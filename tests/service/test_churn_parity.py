"""Churn parity through the sharded front-end: a :class:`ShardedMonitor`
routing the trace across per-shard ledger-maintained monitors must agree
with a single fresh-recompute monitor after every event.

The trace, schema and constraints come from the core parity suite
(:mod:`tests.core.test_churn_parity`); ``REPRO_CHURN_EVENTS`` scales the
trace length.
"""

from __future__ import annotations

import pytest

from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.service.shard import ShardedMonitor

from tests.core.test_churn_parity import (
    CHURN_CONSTRAINTS,
    EVENTS,
    apply_event,
    churn_db,
    churn_events,
)


@pytest.mark.parametrize("shards", [1, 2, 3])
def test_sharded_churn_parity(shards):
    sharded = ShardedMonitor(churn_db(), shards=shards)
    mirror = ConstraintMonitor(DCSatChecker(churn_db()), incremental=False)
    for monitor in (sharded, mirror):
        for name, query in CHURN_CONSTRAINTS.items():
            monitor.register(name, query)
    for index, (kind, payload) in enumerate(churn_events(9001, EVENTS)):
        apply_event(sharded, kind, payload)
        apply_event(mirror, kind, payload)
        for name in CHURN_CONSTRAINTS:
            lhs = sharded.status(name)
            rhs = mirror.status(name, use_subsumption=False)
            assert lhs.satisfied == rhs.satisfied, (
                f"verdict diverged for {name!r} after event {index} "
                f"({kind}, shards={shards})"
            )
            assert lhs.witness == rhs.witness, (
                f"witness diverged for {name!r} after event {index} "
                f"({kind}, shards={shards})"
            )
    # The routed trace must actually have exercised per-shard ledgers.
    merged = sharded.ledger_stats()
    assert merged["counters"]["reused"] > 0
    assert merged["counters"]["swept"] > 0


def test_sharded_dirty_components_surface():
    sharded = ShardedMonitor(churn_db(), shards=2)
    for name, query in CHURN_CONSTRAINTS.items():
        sharded.register(name, query)
    for name in CHURN_CONSTRAINTS:
        sharded.status(name)
    for index, (kind, payload) in enumerate(churn_events(11, 40)):
        apply_event(sharded, kind, payload)
        if kind in ("commit", "forget") and sharded.last_dirty_components:
            break
        for name in CHURN_CONSTRAINTS:
            sharded.status(name)
    else:
        pytest.skip("trace produced no prunable ledger entries")
    assert all(
        count > 0 for count in sharded.last_dirty_components.values()
    )
