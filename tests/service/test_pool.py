"""The parallel per-component solver pool vs. the sequential engine.

Every test cross-checks the pool against the sequential solver on the
same database — the pool must return identical ``satisfied`` /
``witness`` verdicts (Proposition 2 makes components independent, and
the pool takes the lowest-index violating component, matching the
sequential visit order).
"""

import pytest

from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.errors import AlgorithmError
from repro.service.pool import PooledDCSatChecker, SolverPool
from tests.service.conftest import Q_ABSENT, Q_CONFLICT, Q_TWO_A, component_db, r_tx

QUERIES = [Q_CONFLICT, Q_TWO_A, Q_ABSENT]


@pytest.fixture(scope="module")
def pooled():
    checker = PooledDCSatChecker(component_db(), max_workers=2)
    yield checker
    checker.close()


@pytest.fixture(scope="module")
def sequential():
    checker = DCSatChecker(component_db())
    yield checker
    checker.close()


class TestParallelCheck:
    @pytest.mark.parametrize("query", QUERIES)
    def test_verdicts_match_sequential(self, pooled, sequential, query):
        expected = sequential.check(query, algorithm="opt")
        actual = pooled.check(query)
        assert actual.satisfied == expected.satisfied
        assert actual.witness == expected.witness

    def test_parallel_tasks_and_aggregate_elapsed(self, pooled):
        result = pooled.check(Q_CONFLICT)
        # 4 cids x 2 keys -> 8 components (the FD scopes conflicts to a
        # (cid, key) pair); every component becomes one worker task whose
        # solve time is accumulated, two maximal cliques each.
        assert result.stats.parallel_tasks == 8
        assert result.stats.algorithm == "opt-pool"
        assert result.stats.elapsed_seconds > 0.0
        assert result.stats.cliques_enumerated == 8 * 2

    def test_explicit_algorithms_fall_back(self, pooled, sequential):
        naive = pooled.check(Q_CONFLICT, algorithm="naive")
        assert naive.satisfied
        assert naive.stats.algorithm == "naive"
        brute = pooled.check(Q_CONFLICT, algorithm="brute")
        assert brute.satisfied == sequential.check(Q_CONFLICT, algorithm="brute").satisfied

    def test_non_monotone_query_falls_back(self, pooled):
        # Negation makes the query non-monotone: the pool must not run
        # OptDCSat on it; auto falls through to the base class.
        result = pooled.check("q() <- R(c, k, 'a'), not R(c, k, 'b')")
        assert result.stats.algorithm not in ("opt-pool", "opt")

    def test_pool_rejects_non_monotone_direct(self, pooled):
        with pytest.raises(AlgorithmError):
            pooled.pool.check("q() <- R(c, k, 'a'), not R(c, k, 'b')")


class TestEpochSync:
    def test_issue_commit_forget_resync_workers(self):
        pooled = PooledDCSatChecker(component_db(), max_workers=2)
        sequential = DCSatChecker(component_db())
        try:
            assert pooled.check(Q_TWO_A).witness == sequential.check(
                Q_TWO_A, algorithm="opt"
            ).witness  # warm the worker snapshots

            for checker in (pooled, sequential):
                checker.issue(r_tx("N1", 0, 9, "a"))
                checker.issue(r_tx("N2", 9, 0, "a"))
                checker.commit("N1")
                checker.forget("N2")
            assert pooled.epoch == 4
            for query in QUERIES:
                expected = sequential.check(query, algorithm="opt")
                actual = pooled.check(query)
                assert actual.satisfied == expected.satisfied
                assert actual.witness == expected.witness
        finally:
            pooled.close()
            sequential.close()

    def test_oplog_overflow_compacts_without_restart(self):
        pooled = PooledDCSatChecker(component_db(), max_workers=2, resync_ops=2)
        try:
            pooled.check(Q_CONFLICT)  # builds the executor
            executor = pooled.pool._executor
            for index in range(4):  # overflows resync_ops=2 -> compaction
                pooled.issue(r_tx(f"X{index}", 50 + index, 0, "a"))
            # Warm workers stay up: the pool re-snapshots into the sync
            # payload instead of tearing the executor down.
            assert pooled.pool._executor is executor
            assert pooled.pool.compactions >= 1
            assert pooled.pool._snapshot is not None
            assert len(pooled.pool._oplog) <= pooled.pool.resync_ops
            result = pooled.check(Q_CONFLICT)
            assert result.satisfied
        finally:
            pooled.close()

    def test_long_lived_pool_sync_payload_stays_bounded(self):
        """Satellite: the per-task sync payload must not grow with age."""
        pooled = PooledDCSatChecker(component_db(), max_workers=2, resync_ops=4)
        sequential = DCSatChecker(component_db())
        try:
            pooled.check(Q_CONFLICT)  # warm the executor
            for index in range(25):  # many times resync_ops state changes
                tx = r_tx(f"L{index}", 100 + index, 0, "a")
                pooled.issue(tx)
                sequential.issue(tx)
            _, sync = pooled.pool._prepare()
            epoch, base_epoch, ops, snapshot = sync
            assert len(ops) <= pooled.pool.resync_ops
            assert epoch == pooled.epoch
            assert base_epoch + len(ops) == epoch
            assert snapshot is not None
            assert pooled.pool.compactions >= 5
            # Verdicts after repeated compaction still match sequential.
            for query in QUERIES:
                expected = sequential.check(query, algorithm="opt")
                actual = pooled.check(query)
                assert actual.satisfied == expected.satisfied
                assert actual.witness == expected.witness
        finally:
            pooled.close()
            sequential.close()

    def test_unrecorded_mutation_triggers_resnapshot(self):
        pooled = PooledDCSatChecker(component_db(), max_workers=2)
        try:
            pooled.check(Q_CONFLICT)
            # Bypass the op-log hooks entirely: the pool must notice the
            # epoch mismatch and rebuild instead of serving stale state.
            DCSatChecker.issue(pooled, r_tx("RAW", 0, 9, "b"))
            result = pooled.check(Q_CONFLICT)
            assert result.satisfied
            assert pooled.pool._base_epoch == pooled.epoch
        finally:
            pooled.close()


class TestParallelBatch:
    def test_batch_matches_sequential(self):
        pooled = PooledDCSatChecker(component_db(components=3), max_workers=2)
        sequential = DCSatChecker(component_db(components=3))
        try:
            expected = sequential.check_batch(QUERIES)
            actual = pooled.check_batch(QUERIES)
            assert [r.satisfied for r in actual] == [r.satisfied for r in expected]
            for got, want in zip(actual, expected):
                assert got.witness == want.witness
        finally:
            pooled.close()
            sequential.close()

    def test_batch_rejects_non_monotone(self):
        pooled = PooledDCSatChecker(component_db(components=2), max_workers=2)
        try:
            with pytest.raises(AlgorithmError):
                pooled.check_batch([Q_CONFLICT, "q() <- R(c, k, 'a'), not R(c, k, 'b')"])
        finally:
            pooled.close()

    def test_monitor_status_all_over_pool(self):
        pooled = PooledDCSatChecker(component_db(components=3), max_workers=2)
        sequential = DCSatChecker(component_db(components=3))
        try:
            for checker in (pooled, sequential):
                monitor = ConstraintMonitor(checker)
                monitor.register("conflict", Q_CONFLICT)
                monitor.register("two-a", Q_TWO_A)
                monitor.register("absent", Q_ABSENT)
                verdicts = monitor.status_all()
                assert verdicts["conflict"].satisfied
                assert not verdicts["two-a"].satisfied
                assert verdicts["absent"].satisfied
        finally:
            pooled.close()
            sequential.close()


class TestSumAggregates:
    """``assume_nonnegative_sums`` must reach the batch worker tasks
    instead of being hard-coded, so a pool built WITHOUT the flag
    rejects sum aggregates exactly like the sequential checker."""

    QUERIES = [
        "[q(sum(amt)) <- Pay(k, amt)] > 10",
        "[q(sum(amt)) <- Pay(k, amt)] >= 25",
        "[q(sum(amt)) <- Pay(k, amt)] > 30",  # decided by short-circuit
    ]

    @staticmethod
    def pay_db():
        from repro.core.blockchain_db import BlockchainDatabase
        from repro.relational.constraints import (
            ConstraintSet,
            FunctionalDependency,
        )
        from repro.relational.database import Database, make_schema
        from repro.relational.transaction import Transaction

        schema = make_schema({"Pay": ["k", "amt"]})
        constraints = ConstraintSet(
            schema, [FunctionalDependency("Pay", ["k"], ["amt"])]
        )
        state = Database.from_dict(schema, {"Pay": [(0, 4)]})
        pending = [
            Transaction({"Pay": [(k, amt)]}, tx_id=f"P{k}x{amt}")
            for k in (1, 2, 3)
            for amt in (3, 8)
        ]
        return BlockchainDatabase(state, constraints, pending)

    def test_flag_reaches_batch_workers(self):
        pooled = PooledDCSatChecker(
            self.pay_db(), max_workers=2, assume_nonnegative_sums=True
        )
        sequential = DCSatChecker(self.pay_db(), assume_nonnegative_sums=True)
        try:
            expected = sequential.check_batch(self.QUERIES)
            actual = pooled.check_batch(self.QUERIES)
            assert [r.satisfied for r in actual] == [
                r.satisfied for r in expected
            ]
            for got, want in zip(actual, expected):
                assert got.witness == want.witness
        finally:
            pooled.close()
            sequential.close()

    def test_sum_rejected_without_the_flag(self):
        pooled = PooledDCSatChecker(self.pay_db(), max_workers=2)
        try:
            with pytest.raises(AlgorithmError):
                pooled.check_batch(self.QUERIES[:1])
        finally:
            pooled.close()


class TestSolverPoolDirect:
    def test_single_component_stays_in_process(self):
        checker = DCSatChecker(component_db(components=1, keys=1))
        pool = SolverPool(checker, max_workers=2)
        try:
            result = pool.check(Q_CONFLICT)
            assert result.satisfied
            # one survivor < min_components: no executor was ever built
            assert pool._executor is None
        finally:
            pool.shutdown()
            checker.close()

    def test_normalize_handles_unsatisfiable(self):
        checker = DCSatChecker(component_db(components=2))
        pool = SolverPool(checker, max_workers=2)
        try:
            result = pool.check("q() <- R(c, k, v), v = 'a', v = 'b'")
            assert result.satisfied
            assert result.stats.algorithm == "rewrite"
        finally:
            pool.shutdown()
            checker.close()
