"""ShardedMonitor: placement, routing, and verdict identity vs a single
ConstraintMonitor over randomized operation traces."""

import random

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.errors import ReproError
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction
from repro.service.metrics import MetricsRegistry
from repro.service.shard import ShardedMonitor


def two_relation_db():
    """A(k, v) and B(k, v), each with a key on k, no coupling between."""
    schema = make_schema({"A": ["k", "v"], "B": ["k", "v"]})
    constraints = ConstraintSet(
        schema, [Key("A", ["k"], schema), Key("B", ["k"], schema)]
    )
    return BlockchainDatabase(
        Database.from_dict(schema, {"A": [], "B": []}), constraints
    )


def parent_child_db():
    """Parent/Child coupled by an inclusion dependency, plus a loner D."""
    schema = make_schema(
        {
            "Parent": ["pid", "tag"],
            "Child": ["cid", "pid", "tag"],
            "D": ["k", "v"],
        }
    )
    constraints = ConstraintSet(
        schema,
        [
            Key("Parent", ["pid"], schema),
            Key("D", ["k"], schema),
            InclusionDependency("Child", ["pid", "tag"], "Parent", ["pid", "tag"]),
        ],
    )
    return BlockchainDatabase(
        Database.from_dict(
            schema, {"Parent": [(0, "z")], "Child": [], "D": []}
        ),
        constraints,
    )


class TestPlacement:
    def test_decoupled_constraints_spread(self):
        sharded = ShardedMonitor(two_relation_db(), shards=2)
        sharded.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        sharded.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        placements = {name: sharded._placement[name].index for name in sharded.names}
        assert placements["a1"] != placements["b1"]

    def test_coupled_constraints_co_locate(self):
        sharded = ShardedMonitor(parent_child_db(), shards=2)
        sharded.register("p", "q() <- Parent(p, 'x')")
        sharded.register("c", "q() <- Child(c, p, t)")  # ind-coupled to Parent
        sharded.register("d", "q() <- D(k, v)")
        placements = {name: sharded._placement[name].index for name in sharded.names}
        assert placements["p"] == placements["c"]
        assert placements["d"] != placements["p"]

    def test_duplicate_name_rejected_across_shards(self):
        sharded = ShardedMonitor(two_relation_db(), shards=2)
        sharded.register("x", "q() <- A(k, v)")
        with pytest.raises(ReproError):
            sharded.register("x", "q() <- B(k, v)")

    def test_unregister_shrinks_footprint(self):
        sharded = ShardedMonitor(two_relation_db(), shards=1)
        sharded.register("a1", "q() <- A(k, v)")
        sharded.register("b1", "q() <- B(k, v)")
        shard = sharded._placement["a1"]
        assert shard.footprint == {"A", "B"}
        sharded.unregister("b1")
        assert shard.footprint == {"A"}
        assert sharded.names == ("a1",)
        with pytest.raises(ReproError):
            sharded.unregister("b1")

    def test_unknown_constraint(self):
        sharded = ShardedMonitor(two_relation_db(), shards=2)
        with pytest.raises(ReproError):
            sharded.status("ghost")

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ReproError):
            ShardedMonitor(two_relation_db(), shards=0)


class TestRouting:
    def test_decoupled_ops_stay_skipped(self):
        sharded = ShardedMonitor(two_relation_db(), shards=2)
        sharded.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        sharded.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        sharded.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
        sharded.issue(Transaction({"B": [(1, "x")]}, tx_id="TB"))
        detail = {d["shard"]: d for d in sharded.describe()["detail"]}
        a_shard = sharded._placement["a1"].index
        b_shard = sharded._placement["b1"].index
        # Each shard applied only its own battery's transaction.
        assert detail[a_shard]["pending"] == 1
        assert detail[b_shard]["pending"] == 1
        assert detail[a_shard]["skipped_ops"] == 1
        assert detail[b_shard]["skipped_ops"] == 1
        assert detail[a_shard]["flushes"] == 0

    def test_spanning_transaction_drains_backlog(self):
        sharded = ShardedMonitor(two_relation_db(), shards=2)
        sharded.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        sharded.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        sharded.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
        sharded.issue(Transaction({"B": [(1, "x")]}, tx_id="TB"))
        sharded.issue(Transaction({"A": [(2, "s")], "B": [(2, "s")]}, tx_id="SPAN"))
        detail = {d["shard"]: d for d in sharded.describe()["detail"]}
        for d in detail.values():
            assert d["skipped_ops"] == 0
            assert d["pending"] == 3

    def test_registration_drains_what_the_new_entry_observes(self):
        sharded = ShardedMonitor(two_relation_db(), shards=1)
        sharded.register("a1", "q() <- A(k, v)")
        sharded.issue(Transaction({"B": [(1, "x")]}, tx_id="TB"))
        shard = sharded._placement["a1"]
        assert len(shard.skipped) == 1
        sharded.register("b1", "q() <- B(k, 'x')")
        assert shard.skipped == []
        # The drained issue is visible to the new constraint: a possible
        # world containing B(1, 'x') violates the denial constraint.
        assert not sharded.status("b1").satisfied

    def test_max_skipped_bounds_the_backlog(self):
        sharded = ShardedMonitor(two_relation_db(), shards=1, max_skipped=3)
        sharded.register("a1", "q() <- A(k, v)")
        for i in range(5):
            sharded.issue(Transaction({"B": [(i, "x")]}, tx_id=f"TB{i}"))
        shard = sharded._placement["a1"]
        assert len(shard.skipped) <= 3
        assert shard.drained_ops >= 4

    def test_front_validates_before_routing(self):
        sharded = ShardedMonitor(two_relation_db(), shards=2)
        sharded.register("a1", "q() <- A(k, v)")
        sharded.issue(Transaction({"A": [(1, "x")]}, tx_id="T1"))
        with pytest.raises(ReproError):
            sharded.issue(Transaction({"A": [(2, "y")]}, tx_id="T1"))  # dup id
        with pytest.raises(ReproError):
            sharded.commit("nope")
        with pytest.raises(ReproError):
            sharded.absorb(Transaction({"Zzz": [(1,)]}, tx_id="X"))
        # The failed ops left nothing behind.
        assert sharded.pending_count() == 1

    def test_flush_histogram_observed(self):
        metrics = MetricsRegistry()
        sharded = ShardedMonitor(two_relation_db(), shards=2, metrics=metrics)
        sharded.register("a1", "q() <- A(k, v)")
        sharded.register("b1", "q() <- B(k, v)")
        sharded.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
        sharded.issue(Transaction({"A": [(2, "s")], "B": [(2, "s")]}, tx_id="SPAN"))
        sharded.export_gauges(metrics)
        text = metrics.render_text()
        assert "repro_shard_flush_drained_ops_bucket" in text
        assert 'repro_shard_constraints{shard="0"} 1' in text
        assert 'repro_shard_constraints{shard="1"} 1' in text


class TraceRunner:
    """Drive a ShardedMonitor and a single ConstraintMonitor in lockstep,
    asserting invalidation lists and verdicts stay identical."""

    def __init__(self, db_factory, shards: int):
        self.sharded = ShardedMonitor(db_factory(), shards=shards)
        self.single = ConstraintMonitor(DCSatChecker(db_factory()))

    def register(self, name, query):
        self.sharded.register(name, query)
        self.single.register(name, query)

    def op(self, kind, payload):
        got = getattr(self.sharded, kind)(payload)
        want = getattr(self.single, kind)(payload)
        assert got == want, f"{kind}: invalidated {got} != {want}"

    def check_verdicts(self):
        got = self.sharded.status_all()
        want = self.single.status_all()
        assert set(got) == set(want)
        for name in want:
            assert got[name].satisfied == want[name].satisfied, name
            assert (got[name].witness is None) == (want[name].witness is None)


class TestVerdictIdentity:
    def test_deterministic_ind_coupled_commit_flip(self):
        # The stale-verdict regression scenario, through the shard front:
        # the commit into Parent must reach the Child constraint's shard.
        runner = TraceRunner(parent_child_db, shards=2)
        runner.register("no-child", "q() <- Child(c, p, t)")
        runner.register("d-conflict", "q() <- D(k, 'x'), D(k, 'y')")
        runner.op("issue", Transaction({"Parent": [(1, "x")]}, tx_id="TP"))
        runner.op("issue", Transaction({"Parent": [(1, "y")]}, tx_id="TQ"))
        runner.op("issue", Transaction({"Child": [(10, 1, "x")]}, tx_id="TC"))
        runner.op("issue", Transaction({"D": [(1, "x")]}, tx_id="TD"))
        runner.check_verdicts()
        assert not runner.sharded.status("no-child").satisfied
        runner.op("commit", "TQ")
        runner.check_verdicts()
        assert runner.sharded.status("no-child").satisfied

    def test_absorb_identity(self):
        runner = TraceRunner(parent_child_db, shards=2)
        runner.register("no-child", "q() <- Child(c, p, t)")
        runner.register("d-any", "q() <- D(k, v)")
        runner.check_verdicts()
        runner.op("absorb", Transaction({"Parent": [(5, "m")]}, tx_id="XB1"))
        runner.op("issue", Transaction({"Child": [(1, 5, "m")]}, tx_id="TC"))
        runner.check_verdicts()
        assert not runner.sharded.status("no-child").satisfied

    @pytest.mark.parametrize("seed", [7, 23, 51])
    @pytest.mark.parametrize("shards", [2, 3])
    def test_randomized_traces_decoupled_schema(self, seed, shards):
        rng = random.Random(seed)
        runner = TraceRunner(two_relation_db, shards=shards)
        runner.register("a-conflict", "q() <- A(k, 'x'), A(k, 'y')")
        runner.register("b-conflict", "q() <- B(k, 'x'), B(k, 'y')")
        self._drive(rng, runner, relations=["A", "B"], steps=40)

    @pytest.mark.parametrize("seed", [3, 19])
    def test_randomized_traces_ind_coupled_schema(self, seed):
        rng = random.Random(seed)
        runner = TraceRunner(parent_child_db, shards=2)
        runner.register("no-child", "q() <- Child(c, p, t)")
        runner.register("d-conflict", "q() <- D(k, 'x'), D(k, 'y')")
        self._drive_ind(rng, runner, steps=35)

    def _drive(self, rng, runner, relations, steps):
        next_id = 0
        registered = 2
        for _ in range(steps):
            pending = list(runner.single.checker.db.pending_ids)
            roll = rng.random()
            if roll < 0.40 or not pending:
                next_id += 1
                if rng.random() < 0.2:  # spanning co-write
                    facts = {
                        rel: [(rng.randrange(4), rng.choice("xy"))]
                        for rel in relations
                    }
                else:
                    rel = rng.choice(relations)
                    facts = {rel: [(rng.randrange(4), rng.choice("xy"))]}
                runner.op("issue", Transaction(facts, tx_id=f"T{next_id}"))
            elif roll < 0.60:
                runner.op("commit", rng.choice(pending))
            elif roll < 0.75:
                runner.op("forget", rng.choice(pending))
            elif roll < 0.85:
                next_id += 1
                rel = rng.choice(relations)
                runner.op(
                    "absorb",
                    Transaction(
                        {rel: [(100 + next_id, "z")]}, tx_id=f"X{next_id}"
                    ),
                )
            else:
                registered += 1
                rel = rng.choice(relations)
                runner.register(
                    f"c{registered}", f"q() <- {rel}({rng.randrange(4)}, v)"
                )
            runner.check_verdicts()

    def _drive_ind(self, rng, runner, steps):
        next_id = 0
        for _ in range(steps):
            pending = list(runner.single.checker.db.pending_ids)
            roll = rng.random()
            if roll < 0.45 or not pending:
                next_id += 1
                kind = rng.random()
                if kind < 0.4:
                    facts = {"Parent": [(rng.randrange(4), rng.choice("xy"))]}
                elif kind < 0.7:
                    facts = {
                        "Child": [
                            (next_id, rng.randrange(4), rng.choice("xy"))
                        ]
                    }
                else:
                    facts = {"D": [(rng.randrange(3), rng.choice("xy"))]}
                runner.op("issue", Transaction(facts, tx_id=f"T{next_id}"))
            elif roll < 0.70:
                runner.op("commit", rng.choice(pending))
            elif roll < 0.85:
                runner.op("forget", rng.choice(pending))
            else:
                next_id += 1
                runner.op(
                    "absorb",
                    Transaction(
                        {"Parent": [(50 + next_id, "z")]}, tx_id=f"X{next_id}"
                    ),
                )
            runner.check_verdicts()
