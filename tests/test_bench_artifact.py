"""The benchmark artifact writer: schema, metadata stamping, env-driven
output paths, rev fallback outside a checkout, and concurrent recording."""

from __future__ import annotations

import json
import threading

import pytest

from benchmarks import conftest as bench


class TestArtifactShape:
    def test_schema_and_metadata(self):
        artifact = bench.build_artifact(
            [{"name": "x.y", "seconds": 0.5}], rev="abc1234"
        )
        assert artifact["schema"] == bench.SCHEMA_VERSION
        assert artifact["rev"] == "abc1234"
        assert artifact["python"]
        assert artifact["platform"]
        assert artifact["cpu_count"] >= 1
        assert artifact["created"].endswith("Z")
        assert artifact["benchmarks"] == [{"name": "x.y", "seconds": 0.5}]

    def test_rows_sorted_by_name(self):
        artifact = bench.build_artifact(
            [{"name": "z"}, {"name": "a"}, {"name": "m"}], rev="r"
        )
        assert [row["name"] for row in artifact["benchmarks"]] == ["a", "m", "z"]

    def test_samples_derive_quantiles(self):
        artifact = bench.build_artifact(
            [{"name": "t", "seconds": 0.2, "samples": [0.1, 0.2, 0.3, 0.4, 1.0]}],
            rev="r",
        )
        row = artifact["benchmarks"][0]
        assert row["p50"] == 0.3
        assert row["p95"] == pytest.approx(0.4 + 0.8 * 0.6)
        # The raw samples stay in the row for downstream re-derivation.
        assert row["samples"] == [0.1, 0.2, 0.3, 0.4, 1.0]


class TestOutputPaths:
    def test_explicit_json_path_wins(self, tmp_path):
        path = str(tmp_path / "out.json")
        env = {"REPRO_BENCH_JSON": path, "REPRO_BENCH_WRITE": "1"}
        assert bench._bench_json_path(env) == path

    def test_write_flag_uses_default_rev_naming(self):
        path = bench._bench_json_path({"REPRO_BENCH_WRITE": "1"})
        assert path == f"BENCH_{bench._git_rev()}.json"
        assert bench._git_rev() != "dev"  # this IS a checkout

    def test_no_env_means_no_artifact(self):
        assert bench._bench_json_path({}) is None

    def test_rev_falls_back_outside_a_checkout(self, tmp_path):
        assert bench._git_rev(cwd=str(tmp_path)) == "dev"


class TestWriter:
    def test_write_artifact_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        written = bench.write_artifact(
            str(path), [{"name": "a", "seconds": 1.0, "gate": True}], rev="r1"
        )
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert loaded["benchmarks"][0]["gate"] is True

    def test_sessionfinish_writes_when_enabled(self, tmp_path, monkeypatch):
        path = tmp_path / "session.json"
        monkeypatch.setenv("REPRO_BENCH_JSON", str(path))
        monkeypatch.setattr(bench, "_bench_records", [{"name": "s", "seconds": 2.0}])
        bench.pytest_sessionfinish(session=None, exitstatus=0)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == bench.SCHEMA_VERSION
        assert loaded["benchmarks"] == [{"name": "s", "seconds": 2.0}]

    def test_sessionfinish_noop_without_records(self, tmp_path, monkeypatch):
        path = tmp_path / "empty.json"
        monkeypatch.setenv("REPRO_BENCH_JSON", str(path))
        monkeypatch.setattr(bench, "_bench_records", [])
        bench.pytest_sessionfinish(session=None, exitstatus=0)
        assert not path.exists()

    def test_concurrent_record_bench_loses_nothing(self, monkeypatch):
        records: list = []
        monkeypatch.setattr(bench, "_bench_records", records)
        threads = [
            threading.Thread(
                target=lambda t=t: [
                    bench.record_bench(f"c.{t}", seconds=i / 1000)
                    for i in range(100)
                ]
            )
            for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(records) == 800
        artifact = bench.build_artifact(records, rev="r")
        assert len(artifact["benchmarks"]) == 800
