"""Full pipeline: substrate → network → relational image → DCSat.

Recreates the paper's motivating scenario (Section 1) with the actual
Bitcoin machinery: an exchange issues a withdrawal, the transaction gets
stuck, the exchange reasons about reissuing — first with the attacker's
malleability twist, then safely via fee bumping.
"""

import pytest

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.mining import Miner
from repro.bitcoin.relmap import to_blockchain_database
from repro.bitcoin.script import Witness
from repro.bitcoin.transactions import COIN, TxOutput
from repro.bitcoin.wallet import Wallet
from repro.core.checker import DCSatChecker

EXCHANGE = Wallet(KeyPair.generate("exchange"), name="exchange")
CUSTOMER = Wallet(KeyPair.generate("customer"), name="customer")
MINER = Miner(KeyPair.generate("miner").public_key)


@pytest.fixture
def chain() -> Blockchain:
    chain = Blockchain()
    chain.append_genesis(
        [
            TxOutput(30 * COIN, EXCHANGE.script),
            TxOutput(15 * COIN, EXCHANGE.script),
        ]
    )
    return chain


def _double_pay_constraint() -> str:
    return (
        f"q() <- TxIn(pt1, ps1, '{EXCHANGE.public_key}', a1, n1, sg1), "
        f"TxOut(n1, os1, '{CUSTOMER.public_key}', b1), "
        f"TxIn(pt2, ps2, '{EXCHANGE.public_key}', a2, n2, sg2), "
        f"TxOut(n2, os2, '{CUSTOMER.public_key}', b2), n1 != n2"
    )


class TestExchangeScenario:
    def test_single_withdrawal_is_safe(self, chain):
        withdrawal = EXCHANGE.create_payment(
            chain.utxos, CUSTOMER.public_key, 5 * COIN, 100
        )
        db = to_blockchain_database(chain, [withdrawal])
        checker = DCSatChecker(db)
        assert checker.check(_double_pay_constraint()).satisfied

    def test_unsafe_reissue_flagged_by_dry_run(self, chain):
        withdrawal = EXCHANGE.create_payment(
            chain.utxos, CUSTOMER.public_key, 5 * COIN, 100
        )
        # The naive reissue uses the exchange's *other* coin: no conflict.
        reissue = EXCHANGE.reissue_unsafe(
            chain.utxos, withdrawal, CUSTOMER.public_key, 5 * COIN, 200
        )
        db = to_blockchain_database(chain, [withdrawal])
        checker = DCSatChecker(db)
        from repro.bitcoin.relmap import combined_resolver, transaction_to_relational

        resolve = combined_resolver(chain, [withdrawal, reissue])
        hypothetical = transaction_to_relational(reissue, resolve)
        result = checker.dry_run(hypothetical, _double_pay_constraint())
        assert not result.satisfied  # both could confirm: pays twice

    def test_fee_bump_reissue_is_safe(self, chain):
        withdrawal = EXCHANGE.create_payment(
            chain.utxos, CUSTOMER.public_key, 5 * COIN, 100
        )
        bumped = EXCHANGE.bump_fee(chain.utxos, withdrawal, 900)
        db = to_blockchain_database(chain, [withdrawal])
        checker = DCSatChecker(db)
        from repro.bitcoin.relmap import combined_resolver, transaction_to_relational

        resolve = combined_resolver(chain, [withdrawal, bumped])
        hypothetical = transaction_to_relational(bumped, resolve)
        result = checker.dry_run(hypothetical, _double_pay_constraint())
        assert result.satisfied  # conflicting inputs: never both

    def test_malleability_attack_reproduced(self, chain):
        """The MtGox pattern: the attacker re-witnesses the withdrawal
        (same signing digest, new txid); the mauled copy confirms; the
        exchange, seeing its original unconfirmed, would reissue — but
        the mauled and original conflict, so the *reissue from fresh
        coins* is the dangerous step, and DCSat over the relational image
        catches it."""
        withdrawal = EXCHANGE.create_payment(
            chain.utxos, CUSTOMER.public_key, 5 * COIN, 100
        )
        digest = withdrawal.signing_digest()
        # Attacker wraps the same signature in a padded witness.
        mauled = withdrawal.with_witnesses(
            [
                Witness(
                    (EXCHANGE.public_key, CUSTOMER.public_key),
                    (
                        EXCHANGE.keypair.sign(digest),
                        CUSTOMER.keypair.sign(digest),
                    ),
                )
                for _ in withdrawal.inputs
            ]
        )
        assert mauled.txid != withdrawal.txid
        # The mauled copy is valid and confirms.
        pool = Mempool()
        pool.add(mauled, chain)
        MINER.mine(pool, chain)
        assert chain.contains_transaction(mauled.txid)
        assert not chain.contains_transaction(withdrawal.txid)

        # The original can never confirm now (its input is spent)...
        db = to_blockchain_database(chain, [])
        checker = DCSatChecker(db)
        # ...but a reissue from fresh coins would pay the customer twice:
        # the mauled payment is already in R.
        reissue = EXCHANGE.create_payment(
            chain.utxos, CUSTOMER.public_key, 5 * COIN, 200
        )
        from repro.bitcoin.relmap import combined_resolver, transaction_to_relational

        resolve = combined_resolver(chain, [reissue])
        hypothetical = transaction_to_relational(reissue, resolve)
        result = checker.dry_run(hypothetical, _double_pay_constraint())
        assert not result.satisfied


class TestPipelineConsistency:
    def test_mined_subset_of_pending_is_a_possible_world(self, chain):
        """Whatever the miner actually confirms must be one of the
        possible worlds the model predicted."""
        from repro.core.possible_worlds import is_possible_world
        from repro.bitcoin.relmap import (
            bitcoin_schema,
            chain_resolver,
            relational_rows,
        )
        from repro.relational.database import Database

        pool = Mempool(allow_conflicts=True)
        w1 = EXCHANGE.create_payment(chain.utxos, CUSTOMER.public_key, 3 * COIN, 500)
        w2 = EXCHANGE.bump_fee(chain.utxos, w1, 700)  # conflict
        pool.add(w1, chain)
        pool.add(w2, chain)
        pending = pool.transactions()
        db = to_blockchain_database(chain, pending)

        block = MINER.mine(pool, chain)
        # The relational image of the new chain, minus the new block's
        # coinbase — the coinbase is minted by the miner, not drawn from
        # the pending set the model reasons about.
        candidate = Database(bitcoin_schema())
        resolve = chain_resolver(chain)
        for tx in chain.transactions():
            if tx.txid == block.coinbase.txid:
                continue
            out_rows, in_rows = relational_rows(tx, resolve)
            candidate["TxOut"].insert_many(out_rows)
            candidate["TxIn"].insert_many(in_rows)
        assert is_possible_world(db, candidate)
