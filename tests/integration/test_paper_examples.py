"""The paper's worked examples, end to end.

Each test is traceable to a numbered example in the paper: the Figure 2
instance, Example 3's possible worlds, Example 4's double-payment denial
constraint, Example 5's query gallery, Example 6's NaiveDCSat run and
Example 8's OptDCSat run.
"""

import pytest

from repro.core.checker import DCSatChecker
from repro.core.possible_worlds import enumerate_possible_worlds
from repro.query.analysis import is_connected, is_monotone
from repro.query.parser import parse_query
from tests.conftest import EXAMPLE3_WORLDS


class TestExample3:
    def test_possible_worlds(self, figure2):
        assert set(enumerate_possible_worlds(figure2)) == set(EXAMPLE3_WORLDS)

    def test_t1_t5_not_mutually_consistent(self, figure2):
        assert not any(
            {"T1", "T5"} <= world
            for world in enumerate_possible_worlds(figure2)
        )

    def test_t4_depends_on_t2_and_t3(self, figure2):
        for world in enumerate_possible_worlds(figure2):
            if "T4" in world:
                assert {"T2", "T3"} <= world

    def test_t2_depends_on_t1(self, figure2):
        for world in enumerate_possible_worlds(figure2):
            if "T2" in world:
                assert "T1" in world


class TestExample4:
    """Alice (U2Pk) pays Bob; reissue safety via the denial constraint."""

    DOUBLE_PAY = (
        "q1() <- TxIn(pt1, ps1, 'U2Pk', a1, ntx1, 'U2Sig'), "
        "TxOut(ntx1, ns1, 'U7Pk', b1), "
        "TxIn(pt2, ps2, 'U2Pk', a2, ntx2, 'U2Sig'), "
        "TxOut(ntx2, ns2, 'U7Pk', b2), ntx1 != ntx2"
    )

    def test_query_shape(self):
        q = parse_query(self.DOUBLE_PAY)
        assert q.is_positive
        assert is_monotone(q)
        assert is_connected(q)

    def test_holds_on_figure2(self, figure2):
        # T5 is the only U2Pk -> U7Pk transfer; no double payment risk.
        checker = DCSatChecker(figure2)
        assert checker.check(self.DOUBLE_PAY).satisfied


class TestExample5:
    def test_q2_negated_query_parses(self):
        q = parse_query(
            "q2() <- TxIn(pt, ps, 'AlcPK', a, ntx, 'AlcSig'), "
            "TxOut(ntx, s, pk, a2), not Trusted(pk)"
        )
        assert not q.is_positive
        assert not is_monotone(q)

    def test_q3_aggregate_parses(self):
        q = parse_query(
            "[q3(sum(a)) <- TxIn(t, s, 'AlcPK', a, nt, 'AlcSig')] > 5"
        )
        assert q.func == "sum"

    def test_q4_cntd_parses(self):
        q = parse_query(
            "[q4(cntd(ntx)) <- TxIn(pt, ps, 'AlcPK', a, ntx, 'AlcSig'), "
            "TxOut(ntx, s, 'BobPK', a2)] > 10"
        )
        assert q.func == "cntd"


class TestExample6And8:
    QS = "qs() <- TxOut(t, s, 'U8Pk', a)"

    def test_naive_two_cliques(self, figure2):
        checker = DCSatChecker(figure2)
        result = checker.check(self.QS, algorithm="naive", short_circuit=False)
        assert not result.satisfied
        # Two maximal cliques exist; the algorithm may stop after the
        # violating one.
        assert 1 <= result.stats.cliques_enumerated <= 2
        assert result.witness == frozenset({"T1", "T2", "T3", "T4"})

    def test_opt_prunes_t5_component(self, figure2):
        checker = DCSatChecker(figure2)
        result = checker.check(self.QS, algorithm="opt", short_circuit=False)
        assert not result.satisfied
        assert result.stats.components_total == 2
        # Example 8: only the component covering 'U8Pk' is explored.
        assert result.stats.components_pruned == 1
        assert result.witness == frozenset({"T1", "T2", "T3", "T4"})
