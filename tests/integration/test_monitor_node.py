"""A monitoring node over a live network — the mempool_monitor example
as an asserted test: incremental checker maintenance stays consistent
with from-scratch reconstruction across rounds of churn and mining."""

import random

import pytest

from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mining import Miner
from repro.bitcoin.network import Network, Node
from repro.bitcoin.relmap import (
    combined_resolver,
    to_blockchain_database,
    transaction_to_relational,
)
from repro.bitcoin.transactions import COIN, TxOutput
from repro.bitcoin.wallet import Wallet
from repro.core.checker import DCSatChecker
from repro.errors import ChainValidationError
from repro.likelihood import UniformInclusion
from repro.workloads.queries import aggregate_constraint, simple_constraint


@pytest.fixture
def world():
    rng = random.Random(99)
    wallets = [Wallet(KeyPair.generate(f"mn{i}")) for i in range(5)]
    network = Network()
    network.add_node(
        Node("hub", miner=Miner(KeyPair.generate("m").public_key))
    )
    hub = network.nodes["hub"]
    hub.chain.append_genesis([TxOutput(8 * COIN, w.script) for w in wallets])
    return rng, wallets, network, hub


def _random_tx(rng, wallets, hub):
    view = hub.mempool.extended_utxos(hub.chain)
    exclude = hub.mempool.spent_outpoints()
    payer = rng.choice(wallets)
    payee = rng.choice([w for w in wallets if w is not payer])
    balance = sum(o.value for _, o in payer.spendable(view, exclude))
    if balance < 10_000:
        return None
    try:
        return payer.create_payment(
            view, payee.public_key, rng.randint(1000, balance // 3),
            rng.randint(10, 500), exclude=exclude,
        )
    except ChainValidationError:
        return None


def test_incremental_checker_matches_rebuild(world):
    rng, wallets, network, hub = world
    checker = DCSatChecker(to_blockchain_database(hub.chain, []))
    watched = wallets[2]
    constraint = simple_constraint(KeyPair.generate("ghost").public_key)

    for round_index in range(4):
        # Churn: broadcast a handful of transactions.
        for _ in range(5):
            tx = _random_tx(rng, wallets, hub)
            if tx is None:
                continue
            if network.broadcast_transaction(tx)["hub"]:
                resolve = combined_resolver(hub.chain, list(hub.mempool))
                checker.issue(transaction_to_relational(tx, resolve))

        # The incremental checker equals a from-scratch rebuild.
        rebuilt = DCSatChecker(
            to_blockchain_database(hub.chain, hub.mempool.transactions())
        )
        assert set(checker.db.pending_ids) == set(rebuilt.db.pending_ids)
        assert checker.db.current == rebuilt.db.current
        assert checker.fd_graph.conflict_count() == rebuilt.fd_graph.conflict_count()
        assert (
            checker.check(constraint).satisfied
            == rebuilt.check(constraint).satisfied
        )

        # Mine; sync commits/evictions into the checker — including the
        # coinbase, which was never pending and must be *absorbed*.
        block = network.mine_block("hub")
        confirmed = {tx.txid for tx in block.transactions}
        for tx_id in list(checker.db.pending_ids):
            if tx_id in confirmed:
                checker.commit(tx_id)
            elif tx_id not in hub.mempool:
                checker.forget(tx_id)
        from repro.bitcoin.relmap import chain_resolver

        checker.absorb(
            transaction_to_relational(
                block.coinbase, chain_resolver(hub.chain)
            )
        )

    final = DCSatChecker(
        to_blockchain_database(hub.chain, hub.mempool.transactions())
    )
    assert checker.db.current == final.db.current


def test_violation_probability_via_checker(world):
    rng, wallets, network, hub = world
    watched = wallets[0]
    # Three *independent* pending payments to the watched wallet — one
    # per payer, each spending its own confirmed coin (payments from the
    # same payer would chain through change outputs and stop being
    # independent, skewing the closed-form probability below).
    for payer in wallets[1:4]:
        tx = payer.create_payment(
            hub.chain.utxos, watched.public_key, COIN, 100
        )
        hub.mempool.add(tx, hub.chain)
    db = to_blockchain_database(hub.chain, hub.mempool.transactions())
    checker = DCSatChecker(db, assume_nonnegative_sums=True)
    # The watched wallet crosses 9 coins only if at least one pending
    # payment confirms (it holds 8 on-chain).
    constraint = aggregate_constraint(watched.public_key, 9 * COIN)
    assert not checker.check(constraint, algorithm="naive").satisfied
    estimate = checker.violation_probability(
        constraint, UniformInclusion(0.5)
    )
    # 1 - (1/2)^3: at least one of three independent payments lands.
    assert estimate.probability == pytest.approx(1 - 0.5**3)
