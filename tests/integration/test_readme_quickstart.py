"""The README quickstart, verified verbatim-ish.

Documentation rots; this test keeps the README's quickstart honest by
executing the same steps it shows.
"""

from repro import (
    BlockchainDatabase,
    ConstraintSet,
    Database,
    DCSatChecker,
    InclusionDependency,
    Key,
    Transaction,
    make_schema,
)


def test_readme_quickstart():
    schema = make_schema(
        {
            "TxOut": ["txId", "ser", "pk", "amount"],
            "TxIn": ["prevTxId", "prevSer", "pk", "amount", "newTxId", "sig"],
        }
    )
    constraints = ConstraintSet(
        schema,
        [
            Key("TxOut", ["txId", "ser"], schema),
            Key("TxIn", ["prevTxId", "prevSer"], schema),
            InclusionDependency(
                "TxIn",
                ["prevTxId", "prevSer", "pk", "amount"],
                "TxOut",
                ["txId", "ser", "pk", "amount"],
            ),
        ],
    )
    state = Database.from_dict(
        schema, {"TxOut": [("t0", 1, "AlicePk", 5.0)], "TxIn": []}
    )

    pay_bob = Transaction(
        {
            "TxIn": [("t0", 1, "AlicePk", 5.0, "t1", "AliceSig")],
            "TxOut": [("t1", 1, "BobPk", 5.0)],
        },
        tx_id="PayBob",
    )

    db = BlockchainDatabase(state, constraints, [pay_bob])
    checker = DCSatChecker(db)

    result = checker.check(
        """
        q() <- TxIn(p1, s1, 'AlicePk', a1, n1, g1), TxOut(n1, o1, 'BobPk', b1),
               TxIn(p2, s2, 'AlicePk', a2, n2, g2), TxOut(n2, o2, 'BobPk', b2),
               n1 != n2
        """
    )
    assert result.satisfied  # safe: only one payment exists

    # The dangerous reissue the README warns about: a second, fresh
    # payment makes the constraint violable — caught by a dry run.
    state.insert("TxOut", ("t0", 2, "AlicePk", 5.0))
    checker2 = DCSatChecker(
        BlockchainDatabase(state, constraints, [pay_bob])
    )
    reissue = Transaction(
        {
            "TxIn": [("t0", 2, "AlicePk", 5.0, "t2", "AliceSig")],
            "TxOut": [("t2", 1, "BobPk", 5.0)],
        },
        tx_id="PayBobAgain",
    )
    dry = checker2.dry_run(
        reissue,
        """
        q() <- TxIn(p1, s1, 'AlicePk', a1, n1, g1), TxOut(n1, o1, 'BobPk', b1),
               TxIn(p2, s2, 'AlicePk', a2, n2, g2), TxOut(n2, o2, 'BobPk', b2),
               n1 != n2
        """,
    )
    assert not dry.satisfied
