"""Full-pipeline integration over a generated dataset.

One synthetic D100-scale dataset flows through every major component:
all solvers agree on all four query families, witnesses are genuine
possible worlds, both backends concur, the monitor tracks the battery,
explanations trace to real pending transactions, and the double-spend
watcher sees exactly the injected contradictions.
"""

import pytest

from repro.bitcoin.alerts import DoubleSpendWatcher
from repro.bitcoin.generator import DatasetSpec, generate_dataset
from repro.bitcoin.mempool import Mempool
from repro.core.checker import DCSatChecker
from repro.core.explain import explain_violation
from repro.core.monitor import ConstraintMonitor
from repro.workloads.constants import ConstantPicker, fresh_address
from repro.workloads.queries import (
    aggregate_constraint,
    path_constraint,
    simple_constraint,
    star_constraint,
)

SPEC = DatasetSpec(
    name="pipeline",
    committed_blocks=25,
    pending_blocks=8,
    txs_per_block=6,
    users=14,
    contradictions=6,
    seed=77,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(SPEC)


@pytest.fixture(scope="module")
def db(dataset):
    return dataset.to_blockchain_database()


@pytest.fixture(scope="module")
def checker(db):
    return DCSatChecker(db, assume_nonnegative_sums=True)


@pytest.fixture(scope="module")
def picker(dataset):
    return ConstantPicker(dataset)


def _battery(picker):
    source, sink = picker.path_endpoints(2)
    agg_addr, agg_thr = picker.aggregate_target()
    return {
        "qs-unsat": simple_constraint(picker.pending_recipient()),
        "qs-sat": simple_constraint(fresh_address("pipe-1")),
        "qp2-unsat": path_constraint(2, source, sink),
        "qr2-unsat": star_constraint(2, picker.star_source(2)),
        "qa-unsat": aggregate_constraint(agg_addr, agg_thr),
        "qa-sat": aggregate_constraint(fresh_address("pipe-2"), 1),
    }


class TestSolverAgreement:
    def test_all_solvers_all_families(self, checker, picker):
        for name, query in _battery(picker).items():
            expected = checker.check(query, algorithm="naive").satisfied
            algorithms = ["naive"]
            from repro.query.analysis import is_connected
            from repro.query.ast import ConjunctiveQuery

            if is_connected(query):
                algorithms.append("opt")
            if isinstance(query, ConjunctiveQuery):
                algorithms.append("assign")
            for algorithm in algorithms:
                result = checker.check(query, algorithm=algorithm)
                assert result.satisfied == expected, (name, algorithm)

    def test_expected_verdicts(self, checker, picker):
        for name, query in _battery(picker).items():
            result = checker.check(query, algorithm="naive")
            assert result.satisfied == name.endswith("-sat"), name

    def test_witnesses_are_possible_worlds(self, db, checker, picker):
        from repro.core.possible_worlds import is_possible_world, world_database
        from repro.query.evaluator import evaluate

        for name, query in _battery(picker).items():
            result = checker.check(query, algorithm="opt" if name.startswith("qs") else "naive")
            if result.satisfied:
                continue
            world = world_database(db, result.witness)
            assert is_possible_world(db, world), name
            assert evaluate(query, world), name


class TestBackends:
    def test_sqlite_agrees(self, db, picker):
        sqlite_checker = DCSatChecker(
            db, backend="sqlite", assume_nonnegative_sums=True
        )
        memory_checker = DCSatChecker(db, assume_nonnegative_sums=True)
        for name, query in _battery(picker).items():
            assert (
                sqlite_checker.check(query, algorithm="naive").satisfied
                == memory_checker.check(query, algorithm="naive").satisfied
            ), name
        sqlite_checker.close()


class TestMonitorAndExplain:
    def test_monitor_battery(self, db, picker):
        monitor = ConstraintMonitor(
            DCSatChecker(db, assume_nonnegative_sums=True)
        )
        for name, query in _battery(picker).items():
            monitor.register(name, query)
        verdicts = monitor.status_all()
        violated = {name for name, r in verdicts.items() if not r.satisfied}
        assert violated == {"qs-unsat", "qp2-unsat", "qr2-unsat", "qa-unsat"}

    def test_explanations_trace_to_pending(self, db, checker, picker):
        query = _battery(picker)["qs-unsat"]
        result = checker.check(query, algorithm="opt")
        explanation = explain_violation(db, query, result)
        assert explanation.culprit_transactions
        for txid in explanation.culprit_transactions:
            assert txid in db.pending_ids


class TestWatcher:
    def test_watcher_sees_injected_contradictions(self, dataset):
        pool = Mempool(allow_conflicts=True)
        for tx in dataset.pending:
            pool.add(tx, dataset.chain)
        watcher = DoubleSpendWatcher(dataset.chain, pool)
        pairs = {frozenset(pair) for pair in watcher.conflict_pairs()}
        injected = {frozenset(pair) for pair in dataset.contradiction_pairs}
        assert injected <= pairs
        alerts = watcher.scan()
        assert len(alerts) >= len(injected)


class TestSteadyStateReplay:
    def test_commit_a_block_worth_of_pending(self, dataset):
        """Commit a consistent slice of the pending set and re-check."""
        db = dataset.to_blockchain_database()
        checker = DCSatChecker(db, assume_nonnegative_sums=True)
        from repro.core.possible_worlds import get_maximal

        world = get_maximal(checker.workspace, list(db.pending_ids)[:30])
        checker.workspace.clear_active()
        for tx_id in sorted(world):
            checker.commit(tx_id)
        # The state remains consistent and checkable.
        from repro.relational.checking import check_database

        assert check_database(db.current, db.constraints)
        result = checker.check(
            simple_constraint(fresh_address("pipe-3")), algorithm="naive"
        )
        assert result.satisfied