"""Memory and sqlite backends: agreement and lifecycle."""

import pytest

from repro.core.workspace import Workspace
from repro.errors import StorageError
from repro.query.parser import parse_query
from repro.relational.transaction import Transaction
from repro.storage import MemoryBackend, SqliteBackend, make_backend


@pytest.fixture
def workspace(figure2):
    return Workspace(figure2)


QUERIES = [
    "q() <- TxOut(t, s, 'U8Pk', a)",
    "q() <- TxOut(t, s, 'U3Pk', a)",
    "q() <- TxOut(t, s, pk, a), TxIn(t, s, pk, a, n, sg)",
    "q() <- TxIn(p1, s1, 'U2Pk', a, n1, sg1), TxIn(p2, s2, 'U2Pk', a, n2, sg2), n1 != n2",
    "[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 6",
    "[q(count()) <- TxOut(t, s, pk, a)] > 8",
    "[q(cntd(pk)) <- TxOut(t, s, pk, a)] >= 7",
    "[q(max(a)) <- TxOut(t, s, 'U7Pk', a)] > 3",
]

WORLDS = [
    frozenset(),
    frozenset({"T1"}),
    frozenset({"T3", "T5"}),
    frozenset({"T1", "T2", "T3", "T4"}),
    frozenset({"T1", "T2", "T3", "T4", "T5"}),  # overlay, not a world
]


def test_backends_agree_on_all_queries_and_worlds(workspace):
    memory = MemoryBackend()
    memory.attach(workspace)
    sqlite_backend = SqliteBackend()
    sqlite_backend.attach(workspace)
    for text in QUERIES:
        query = parse_query(text)
        for world in WORLDS:
            expected = memory.evaluate(query, world)
            actual = sqlite_backend.evaluate(query, world)
            assert actual == expected, (text, sorted(world))
    sqlite_backend.close()


def test_sqlite_flag_updates_are_incremental(workspace):
    backend = SqliteBackend()
    backend.attach(workspace)
    query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
    assert not backend.evaluate(query, frozenset())
    assert backend.evaluate(query, frozenset({"T1", "T2", "T3", "T4"}))
    assert not backend.evaluate(query, frozenset({"T5"}))
    backend.close()


def test_sqlite_issue_commit_forget(workspace):
    backend = SqliteBackend()
    backend.attach(workspace)
    tx = Transaction({"TxOut": [(9, 1, "NewPk", 1.0)]}, tx_id="T9")
    workspace.issue(tx)
    backend.on_issue(tx)
    query = parse_query("q() <- TxOut(t, s, 'NewPk', a)")
    assert not backend.evaluate(query, frozenset())
    assert backend.evaluate(query, frozenset({"T9"}))
    committed = workspace.commit("T9")
    backend.on_commit(committed)
    assert backend.evaluate(query, frozenset())
    backend.close()


def test_sqlite_forget(workspace):
    backend = SqliteBackend()
    backend.attach(workspace)
    tx = Transaction({"TxOut": [(9, 1, "GonePk", 1.0)]}, tx_id="T9")
    workspace.issue(tx)
    backend.on_issue(tx)
    forgotten = workspace.forget("T9")
    backend.on_forget(forgotten)
    query = parse_query("q() <- TxOut(t, s, 'GonePk', a)")
    assert not backend.evaluate(query, frozenset())
    backend.close()


def test_unattached_backend_raises():
    with pytest.raises(StorageError):
        MemoryBackend().evaluate(parse_query("q() <- R(x)"), frozenset())
    with pytest.raises(StorageError):
        SqliteBackend().evaluate(parse_query("q() <- R(x)"), frozenset())


def test_make_backend():
    assert isinstance(make_backend("memory"), MemoryBackend)
    assert isinstance(make_backend("sqlite"), SqliteBackend)
    with pytest.raises(StorageError):
        make_backend("postgres")


def test_memory_backend_close_detaches(workspace):
    backend = MemoryBackend()
    backend.attach(workspace)
    backend.close()
    with pytest.raises(StorageError):
        backend.evaluate(parse_query("q() <- TxOut(t, s, pk, a)"), frozenset())
