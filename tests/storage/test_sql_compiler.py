"""Conjunctive-query → SQL compilation."""

import sqlite3

import pytest

from repro.query.parser import parse_query
from repro.relational.database import make_schema
from repro.storage.sql_compiler import compile_query, quote_identifier


@pytest.fixture
def schema():
    return make_schema({"Edge": ["src", "dst"], "Node": ["id", "label"]})


@pytest.fixture
def conn(schema):
    conn = sqlite3.connect(":memory:")
    conn.execute("CREATE TABLE Edge (src, dst, _tx TEXT DEFAULT '', _current INTEGER DEFAULT 1)")
    conn.execute("CREATE TABLE Node (id, label, _tx TEXT DEFAULT '', _current INTEGER DEFAULT 1)")
    conn.executemany(
        "INSERT INTO Edge (src, dst) VALUES (?, ?)",
        [(1, 2), (2, 3), (3, 4), (2, 4)],
    )
    conn.executemany(
        "INSERT INTO Node (id, label) VALUES (?, ?)",
        [(1, "a"), (2, "b"), (3, "a"), (4, "c")],
    )
    return conn


def _exists(conn, compiled) -> bool:
    return bool(conn.execute(compiled.sql, compiled.params).fetchone()[0])


class TestExistsCompilation:
    def test_single_atom(self, schema, conn):
        compiled = compile_query(parse_query("q() <- Edge(1, y)"), schema)
        assert compiled.kind == "exists"
        assert "_current = 1" in compiled.sql
        assert _exists(conn, compiled)
        missing = compile_query(parse_query("q() <- Edge(9, y)"), schema)
        assert not _exists(conn, missing)

    def test_join(self, schema, conn):
        compiled = compile_query(
            parse_query("q() <- Edge(x, y), Edge(y, z)"), schema
        )
        assert _exists(conn, compiled)
        no_path = compile_query(
            parse_query("q() <- Edge(a, b), Edge(b, c), Edge(c, d), Edge(d, e)"),
            schema,
        )
        assert not _exists(conn, no_path)

    def test_repeated_variable(self, schema, conn):
        compiled = compile_query(parse_query("q() <- Edge(x, x)"), schema)
        assert not _exists(conn, compiled)
        conn.execute("INSERT INTO Edge (src, dst) VALUES (7, 7)")
        assert _exists(conn, compiled)

    def test_comparisons(self, schema, conn):
        lt = compile_query(parse_query("q() <- Edge(x, y), x < y"), schema)
        assert _exists(conn, lt)
        gt = compile_query(parse_query("q() <- Edge(x, y), x > y"), schema)
        assert not _exists(conn, gt)
        ne = compile_query(
            parse_query("q() <- Node(x, l), Node(y, l), x != y"), schema
        )
        assert "<>" in ne.sql
        assert _exists(conn, ne)

    def test_negated_atom(self, schema, conn):
        compiled = compile_query(
            parse_query("q() <- Node(x, l), not Edge(x, x)"), schema
        )
        assert "NOT EXISTS" in compiled.sql
        assert _exists(conn, compiled)

    def test_current_flag_respected(self, schema, conn):
        conn.execute("UPDATE Edge SET _current = 0 WHERE src = 1")
        compiled = compile_query(parse_query("q() <- Edge(1, y)"), schema)
        assert not _exists(conn, compiled)

    def test_constants_parameterized_not_inlined(self, schema):
        compiled = compile_query(parse_query("q() <- Node(x, 'a')"), schema)
        assert "'a'" not in compiled.sql  # value travels as a parameter
        assert "a" in compiled.params


class TestRowsCompilation:
    def test_aggregate_compiles_to_distinct_rows(self, schema, conn):
        compiled = compile_query(
            parse_query("[q(count()) <- Edge(x, y)] > 3"), schema
        )
        assert compiled.kind == "rows"
        assert compiled.sql.startswith("SELECT DISTINCT")
        rows = conn.execute(compiled.sql, compiled.params).fetchall()
        assert len(rows) == 4
        assert compiled.var_order == ("x", "y")

    def test_duplicate_provider_rows_deduplicated(self, schema, conn):
        # Same logical tuple under two provenances must count once.
        conn.execute("INSERT INTO Edge (src, dst, _tx) VALUES (1, 2, 'Tx')")
        compiled = compile_query(
            parse_query("[q(count()) <- Edge(x, y)] > 3"), schema
        )
        rows = conn.execute(compiled.sql, compiled.params).fetchall()
        assert len(rows) == 4

    def test_variable_free_aggregate_uses_exists(self, schema):
        compiled = compile_query(
            parse_query("[q(count()) <- Edge(1, 2)] >= 1"), schema
        )
        assert compiled.kind == "exists"


class TestQuoting:
    def test_quote_identifier(self):
        assert quote_identifier("simple") == '"simple"'
        assert quote_identifier('we"ird') == '"we""ird"'
