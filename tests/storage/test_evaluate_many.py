"""The multi-world evaluation path: ``Backend.evaluate_many``.

The contract: ``evaluate_many(query, actives)`` returns exactly
``[evaluate(query, active) for active in actives]`` — one verdict per
world, in order — regardless of how the backend amortizes the work.
The memory backend loops (world switches are O(1) there); the sqlite
backend compiles a world-correlated query once and answers each chunk
of worlds in a single SQL round trip, without touching the ``_active``
flags its single-world path maintains.
"""

import pytest

from repro.core.workspace import Workspace
from repro.query.parser import parse_query
from repro.relational.transaction import Transaction
from repro.storage import MemoryBackend, SqliteBackend

QUERIES = [
    "q() <- TxOut(t, s, 'U8Pk', a)",
    "q() <- TxOut(t, s, pk, a), TxIn(t, s, pk, a, n, sg)",
    "q() <- TxIn(p1, s1, 'U2Pk', a, n1, sg1), TxIn(p2, s2, 'U2Pk', a, n2, sg2), n1 != n2",
    "q() <- TxOut(t, s, pk, a), not TxIn(t, s, pk, a, 'T9', 'sig')",
    "[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 6",
    "[q(count()) <- TxOut(t, s, pk, a)] > 8",
    "[q(cntd(pk)) <- TxOut(t, s, pk, a)] >= 7",
    "[q(max(a)) <- TxOut(t, s, 'U7Pk', a)] > 3",
]

WORLDS = [
    frozenset(),
    frozenset({"T1"}),
    frozenset({"T3", "T5"}),
    frozenset({"T1", "T2", "T3", "T4"}),
    frozenset({"T2"}),
    frozenset({"T1", "T2", "T3", "T4", "T5"}),  # overlay, not a world
]


@pytest.fixture
def workspace(figure2):
    return Workspace(figure2)


@pytest.fixture
def sqlite_backend(workspace):
    backend = SqliteBackend()
    backend.attach(workspace)
    yield backend
    backend.close()


def test_memory_evaluate_many_matches_loop(workspace):
    backend = MemoryBackend()
    backend.attach(workspace)
    for text in QUERIES:
        query = parse_query(text)
        expected = [backend.evaluate(query, world) for world in WORLDS]
        assert backend.evaluate_many(query, WORLDS) == expected, text


def test_sqlite_evaluate_many_matches_per_world(workspace, sqlite_backend):
    memory = MemoryBackend()
    memory.attach(workspace)
    for text in QUERIES:
        query = parse_query(text)
        expected = [memory.evaluate(query, world) for world in WORLDS]
        assert sqlite_backend.evaluate_many(query, WORLDS) == expected, text


def test_sqlite_batch_is_one_round_trip(sqlite_backend):
    query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
    before = sqlite_backend.eval_roundtrips
    verdicts = sqlite_backend.evaluate_many(query, WORLDS)
    assert len(verdicts) == len(WORLDS)
    assert sqlite_backend.eval_roundtrips == before + 1
    # The per-world path pays one round trip each.
    for world in WORLDS:
        sqlite_backend.evaluate(query, world)
    assert sqlite_backend.eval_roundtrips == before + 1 + len(WORLDS)


def test_sqlite_evaluate_many_leaves_active_flags_alone(sqlite_backend):
    query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
    # Pin the single-world path's flag state, batch, then check that the
    # next single-world call still answers from a consistent diff.
    assert sqlite_backend.evaluate(query, frozenset({"T1", "T2", "T3", "T4"}))
    sqlite_backend.evaluate_many(query, WORLDS)
    assert not sqlite_backend.evaluate(query, frozenset({"T5"}))
    assert sqlite_backend.evaluate(query, frozenset({"T1", "T2", "T3", "T4"}))


def test_sqlite_evaluate_many_chunks_under_param_budget(workspace, sqlite_backend):
    import repro.storage.sqlite_backend as mod

    query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
    memory = MemoryBackend()
    memory.attach(workspace)
    worlds = WORLDS * 40  # enough membership params to overflow one chunk
    expected = [memory.evaluate(query, world) for world in worlds]
    original = mod._PARAM_BUDGET
    mod._PARAM_BUDGET = 40
    try:
        before = sqlite_backend.eval_roundtrips
        assert sqlite_backend.evaluate_many(query, worlds) == expected
        chunks = sqlite_backend.eval_roundtrips - before
    finally:
        mod._PARAM_BUDGET = original
    assert chunks > 1  # the budget forced splitting...
    assert chunks < len(worlds)  # ...but not into one world per trip


def test_sqlite_evaluate_many_empty_input(sqlite_backend):
    query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
    assert sqlite_backend.evaluate_many(query, []) == []


def test_sqlite_evaluate_many_sees_issue_and_commit(workspace, sqlite_backend):
    query = parse_query("q() <- TxOut(t, s, 'U9Pk', a)")
    assert sqlite_backend.evaluate_many(query, [frozenset()]) == [False]
    tx = Transaction({"TxOut": [("T9", 0, "U9Pk", 1)]}, tx_id="T9")
    workspace.issue(tx)
    sqlite_backend.on_issue(tx)
    assert sqlite_backend.evaluate_many(
        query, [frozenset(), frozenset({"T9"})]
    ) == [False, True]
    committed = workspace.commit("T9")
    sqlite_backend.on_commit(committed)
    assert sqlite_backend.evaluate_many(query, [frozenset()]) == [True]


def test_flip_uses_one_statement_per_relation(sqlite_backend):
    """A world switch activating K transactions issues one batched
    UPDATE per relation (executemany), not K separate statements."""
    query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
    sqlite_backend.evaluate(query, frozenset())
    before = sqlite_backend.flip_statements
    # From {} to a 4-transaction world: one _flip of 4 ids.
    sqlite_backend.evaluate(query, frozenset({"T1", "T2", "T3", "T4"}))
    relations = len(sqlite_backend._workspace.base.relation_names)
    assert sqlite_backend.flip_statements == before + relations
