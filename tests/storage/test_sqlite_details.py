"""SQLite backend internals: DDL, type affinity, flag bookkeeping."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.workspace import Workspace
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database
from repro.relational.schema import Attribute, RelationSchema, Schema
from repro.relational.transaction import Transaction
from repro.storage.sqlite_backend import SqliteBackend


def _typed_db() -> BlockchainDatabase:
    schema = Schema(
        [
            RelationSchema(
                "Mixed",
                [
                    Attribute("name", str),
                    Attribute("count", int),
                    Attribute("ratio", float),
                    Attribute("flag", bool),
                ],
            )
        ]
    )
    constraints = ConstraintSet(schema, [Key("Mixed", ["name"], schema)])
    current = Database.from_dict(
        schema, {"Mixed": [("alpha", 3, 0.5, True), ("beta", 0, 2.0, False)]}
    )
    pending = [
        Transaction({"Mixed": [("gamma", 7, 1.25, True)]}, tx_id="M1"),
    ]
    return BlockchainDatabase(current, constraints, pending)


@pytest.fixture
def backend():
    db = _typed_db()
    workspace = Workspace(db)
    backend = SqliteBackend()
    backend.attach(workspace)
    yield backend, workspace
    backend.close()


class TestTypes:
    def test_ddl_affinities(self, backend):
        sqlite_backend, _ = backend
        conn = sqlite_backend._conn
        columns = {
            row[1]: row[2]
            for row in conn.execute('PRAGMA table_info("Mixed")')
        }
        assert columns["name"] == "TEXT"
        assert columns["count"] == "INTEGER"
        assert columns["ratio"] == "REAL"
        assert columns["flag"] == "INTEGER"
        assert columns["_tx"] == "TEXT"
        assert columns["_current"] == "INTEGER"

    def test_typed_values_round_trip(self, backend):
        sqlite_backend, _ = backend
        q = parse_query("q() <- Mixed('alpha', 3, r, f), r < 1.0")
        assert sqlite_backend.evaluate(q, frozenset())
        q2 = parse_query("q() <- Mixed(n, c, 2.0, f)")
        assert sqlite_backend.evaluate(q2, frozenset())

    def test_bool_comparisons(self, backend):
        sqlite_backend, _ = backend
        # Booleans are stored as 0/1 — matching Python's bool/int duality.
        q = parse_query("q() <- Mixed(n, c, r, 1)")
        assert sqlite_backend.evaluate(q, frozenset())


class TestFlags:
    def test_current_counts_after_switches(self, backend):
        sqlite_backend, _ = backend
        conn = sqlite_backend._conn

        def current_count():
            return conn.execute(
                'SELECT COUNT(*) FROM "Mixed" WHERE _current = 1'
            ).fetchone()[0]

        sqlite_backend.set_active(frozenset())
        assert current_count() == 2  # committed rows only
        sqlite_backend.set_active(frozenset({"M1"}))
        assert current_count() == 3
        sqlite_backend.set_active(frozenset())
        assert current_count() == 2

    def test_rows_carry_provenance(self, backend):
        sqlite_backend, _ = backend
        conn = sqlite_backend._conn
        provenance = {
            row[0]
            for row in conn.execute('SELECT DISTINCT _tx FROM "Mixed"')
        }
        assert provenance == {"", "M1"}

    def test_commit_rewrites_provenance(self, backend):
        sqlite_backend, workspace = backend
        tx = workspace.commit("M1")
        sqlite_backend.on_commit(tx)
        conn = sqlite_backend._conn
        rows = conn.execute(
            'SELECT _tx, _current FROM "Mixed" WHERE "name" = ?', ("gamma",)
        ).fetchall()
        assert rows == [("", 1)]

    def test_compiled_query_cache(self, backend):
        sqlite_backend, _ = backend
        q = parse_query("q() <- Mixed(n, c, r, f)")
        sqlite_backend.evaluate(q, frozenset())
        key = f"{type(q).__name__}:{q}"
        first = sqlite_backend._compiled[key]
        sqlite_backend.evaluate(q, frozenset({"M1"}))
        assert sqlite_backend._compiled[key] is first

    def test_cache_keys_are_structural_not_identity(self, backend):
        """Regression: id()-keyed caching handed recycled query objects a
        stale compiled plan (address reuse after garbage collection)."""
        sqlite_backend, _ = backend
        import gc

        answers = []
        for text in [
            "q() <- Mixed('alpha', c, r, f)",
            "q() <- Mixed('beta', c, r, f)",
            "q() <- Mixed('nope', c, r, f)",
        ] * 3:
            q = parse_query(text)  # fresh object each round, then dropped
            answers.append(sqlite_backend.evaluate(q, frozenset()))
            del q
            gc.collect()
        assert answers == [True, True, False] * 3

    def test_index_creation_optional(self):
        db = _typed_db()
        workspace = Workspace(db)
        lean = SqliteBackend(create_indexes=False)
        lean.attach(workspace)
        conn = lean._conn
        indexes = [
            row[1] for row in conn.execute('PRAGMA index_list("Mixed")')
        ]
        named = [name for name in indexes if name.startswith("idx_")]
        assert named == ["idx_Mixed_tx"]
        lean.close()
