"""Database: collections of relations, facts, copies."""

import pytest

from repro.errors import SchemaError
from repro.relational.database import Database, make_schema


@pytest.fixture
def db() -> Database:
    schema = make_schema({"R": ["a", "b"], "S": ["x"]})
    return Database.from_dict(schema, {"R": [(1, 2), (3, 4)], "S": [(9,)]})


def test_from_dict_and_lookup(db):
    assert len(db["R"]) == 2
    assert len(db["S"]) == 1
    assert db.total_tuples() == 3


def test_unknown_relation(db):
    with pytest.raises(SchemaError):
        db["T"]


def test_contains(db):
    assert "R" in db
    assert "T" not in db


def test_insert_and_facts(db):
    assert db.insert("S", (10,))
    assert not db.insert("S", (10,))
    facts = set(db.facts())
    assert ("S", (10,)) in facts
    assert ("R", (1, 2)) in facts
    assert len(facts) == 4


def test_insert_facts(db):
    n = db.insert_facts([("R", (5, 6)), ("R", (1, 2))])
    assert n == 1


def test_contains_fact(db):
    assert db.contains_fact("R", (1, 2))
    assert not db.contains_fact("R", (9, 9))
    assert not db.contains_fact("T", (1,))


def test_copy_independent(db):
    clone = db.copy()
    clone.insert("R", (7, 8))
    assert not db.contains_fact("R", (7, 8))
    assert clone.contains_fact("R", (1, 2))


def test_equality(db):
    clone = db.copy()
    assert db == clone
    clone.insert("S", (11,))
    assert db != clone


def test_relation_names(db):
    assert db.relation_names == ("R", "S")


def test_make_schema_shapes():
    schema = make_schema({"Only": ["one"]})
    assert schema["Only"].arity == 1
