"""Constraint definitions: FDs, keys, inclusion dependencies, resolution."""

import pytest

from repro.errors import ConstraintError
from repro.relational.constraints import (
    ConstraintSet,
    FunctionalDependency,
    InclusionDependency,
    Key,
)
from repro.relational.database import make_schema


@pytest.fixture
def schema():
    return make_schema({"R": ["a", "b", "c"], "S": ["x", "y"]})


class TestFunctionalDependency:
    def test_basic(self):
        fd = FunctionalDependency("R", ["a"], ["b", "c"])
        assert fd.lhs == ("a",)
        assert fd.rhs == ("b", "c")
        assert not fd.is_trivial

    def test_trivial(self):
        fd = FunctionalDependency("R", ["a", "b"], ["a"])
        assert fd.is_trivial

    def test_empty_sides_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency("R", [], ["b"])
        with pytest.raises(ConstraintError):
            FunctionalDependency("R", ["a"], [])

    def test_str(self):
        assert "R" in str(FunctionalDependency("R", ["a"], ["b"]))


class TestKey:
    def test_key_is_full_fd(self, schema):
        key = Key("R", ["a"], schema)
        assert key.lhs == ("a",)
        assert key.rhs == ("a", "b", "c")

    def test_key_validates_attributes(self, schema):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            Key("R", ["nope"], schema)


class TestInclusionDependency:
    def test_basic(self):
        ind = InclusionDependency("S", ["x"], "R", ["a"])
        assert ind.child == "S"
        assert ind.parent == "R"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConstraintError):
            InclusionDependency("S", ["x", "y"], "R", ["a"])

    def test_empty_rejected(self):
        with pytest.raises(ConstraintError):
            InclusionDependency("S", [], "R", [])


class TestConstraintSet:
    def test_grouping(self, schema):
        cs = ConstraintSet(
            schema,
            [
                Key("R", ["a"], schema),
                FunctionalDependency("R", ["b"], ["c"]),
                InclusionDependency("S", ["x"], "R", ["a"]),
            ],
        )
        assert len(cs) == 3
        assert len(cs.fds_for("R")) == 2
        assert cs.fds_for("S") == []
        assert len(cs.inds_for_child("S")) == 1
        assert len(cs.inds_for_parent("R")) == 1
        assert cs.inds_for_child("R") == []
        assert cs.has_fds and cs.has_inds
        assert not cs.only_keys_and_fds()
        assert not cs.only_inds()

    def test_fragments(self, schema):
        fd_only = ConstraintSet(schema, [Key("R", ["a"], schema)])
        assert fd_only.only_keys_and_fds()
        ind_only = ConstraintSet(
            schema, [InclusionDependency("S", ["x"], "R", ["a"])]
        )
        assert ind_only.only_inds()

    def test_resolution_positions(self, schema):
        cs = ConstraintSet(schema, [FunctionalDependency("R", ["b"], ["c"])])
        resolved = cs.fds_for("R")[0]
        assert resolved.lhs_positions == (1,)
        assert resolved.rhs_positions == (2,)

    def test_unsupported_constraint_rejected(self, schema):
        with pytest.raises(ConstraintError):
            ConstraintSet(schema, ["not a constraint"])

    def test_iteration(self, schema):
        constraints = [
            Key("R", ["a"], schema),
            InclusionDependency("S", ["x"], "R", ["a"]),
        ]
        cs = ConstraintSet(schema, constraints)
        assert list(cs) == constraints
