"""Constraint checking: full validation, incremental can_extend,
pairwise fd-consistency."""

import pytest

from repro.relational.checking import (
    can_extend,
    check_database,
    find_violations,
    transactions_fd_consistent,
)
from repro.relational.constraints import (
    ConstraintSet,
    FunctionalDependency,
    InclusionDependency,
    Key,
)
from repro.relational.database import Database, make_schema


@pytest.fixture
def schema():
    return make_schema({"R": ["a", "b"], "S": ["x", "y"]})


@pytest.fixture
def constraints(schema):
    return ConstraintSet(
        schema,
        [
            Key("R", ["a"], schema),
            InclusionDependency("S", ["x"], "R", ["a"]),
        ],
    )


class TestFindViolations:
    def test_clean_database(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [(1, "x")], "S": [(1, "y")]})
        assert check_database(db, constraints)
        assert find_violations(db, constraints) == []

    def test_fd_violation_reported(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [(1, "x"), (1, "z")], "S": []})
        violations = find_violations(db, constraints)
        assert len(violations) == 1
        assert violations[0].relation == "R"
        assert len(violations[0].witnesses) == 2
        assert not check_database(db, constraints)

    def test_ind_violation_reported(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [(1, "x")], "S": [(2, "y")]})
        violations = find_violations(db, constraints)
        assert len(violations) == 1
        assert violations[0].relation == "S"
        assert violations[0].witnesses == ((2, "y"),)

    def test_multiple_violations(self, schema, constraints):
        db = Database.from_dict(
            schema, {"R": [(1, "x"), (1, "y")], "S": [(5, "z")]}
        )
        assert len(find_violations(db, constraints)) == 2

    def test_restricted_relations(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [(1, "x")], "S": [(9, "y")]})
        assert find_violations(db, constraints, relations=["R"]) == []
        assert len(find_violations(db, constraints, relations=["S"])) == 1

    def test_fd_same_rhs_is_fine(self, schema):
        cs = ConstraintSet(schema, [FunctionalDependency("R", ["a"], ["b"])])
        db = Database.from_dict(schema, {"R": [(1, "x")], "S": []})
        db.insert("R", (1, "x"))  # duplicate collapses, no violation
        assert check_database(db, cs)


class TestCanExtend:
    def test_consistent_extension(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [(1, "x")], "S": []})
        assert can_extend(db, constraints, {"R": [(2, "y")], "S": [(1, "s")]})

    def test_fd_clash_with_existing(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [(1, "x")], "S": []})
        assert not can_extend(db, constraints, {"R": [(1, "DIFFERENT")]})

    def test_fd_clash_within_new_facts(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [], "S": []})
        assert not can_extend(db, constraints, {"R": [(1, "x"), (1, "y")]})

    def test_identical_tuple_is_consistent(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [(1, "x")], "S": []})
        assert can_extend(db, constraints, {"R": [(1, "x")]})

    def test_ind_parent_missing(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [(1, "x")], "S": []})
        assert not can_extend(db, constraints, {"S": [(99, "s")]})

    def test_ind_parent_in_same_batch(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [], "S": []})
        assert can_extend(db, constraints, {"R": [(7, "v")], "S": [(7, "s")]})

    def test_ind_parent_in_existing(self, schema, constraints):
        db = Database.from_dict(schema, {"R": [(3, "z")], "S": []})
        assert can_extend(db, constraints, {"S": [(3, "s")]})


class TestTransactionsFdConsistent:
    def test_conflicting_pair(self, schema, constraints):
        assert not transactions_fd_consistent(
            {"R": [(1, "x")]}, {"R": [(1, "y")]}, constraints
        )

    def test_consistent_pair(self, schema, constraints):
        assert transactions_fd_consistent(
            {"R": [(1, "x")]}, {"R": [(2, "y")]}, constraints
        )

    def test_identical_tuples_consistent(self, schema, constraints):
        assert transactions_fd_consistent(
            {"R": [(1, "x")]}, {"R": [(1, "x")]}, constraints
        )

    def test_inds_ignored(self, schema, constraints):
        # Dangling S tuples are an ind matter, not an fd conflict.
        assert transactions_fd_consistent(
            {"S": [(123, "a")]}, {"S": [(456, "b")]}, constraints
        )

    def test_internal_inconsistency_detected(self, schema, constraints):
        assert not transactions_fd_consistent(
            {"R": [(1, "x"), (1, "y")]}, {}, constraints
        )
