"""FD theory: closures, implication, minimal covers, keys."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConstraintError
from repro.relational.constraints import FunctionalDependency
from repro.relational.fd_theory import (
    attribute_closure,
    candidate_keys,
    equivalent,
    implies,
    is_superkey,
    minimal_cover,
)


def fd(lhs, rhs, relation="R"):
    return FunctionalDependency(relation, tuple(lhs), tuple(rhs))


#: The textbook example: R(a,b,c,d) with a->b, b->c.
CHAIN = [fd("a", "b"), fd("b", "c")]


class TestClosure:
    def test_chain(self):
        assert attribute_closure(["a"], CHAIN) == {"a", "b", "c"}
        assert attribute_closure(["b"], CHAIN) == {"b", "c"}
        assert attribute_closure(["c"], CHAIN) == {"c"}

    def test_composite_lhs(self):
        fds = [fd(["a", "b"], "c"), fd("c", "d")]
        assert attribute_closure(["a"], fds) == {"a"}
        assert attribute_closure(["a", "b"], fds) == {"a", "b", "c", "d"}

    def test_empty_fds(self):
        assert attribute_closure(["x"], []) == {"x"}

    def test_cross_relation_rejected(self):
        with pytest.raises(ConstraintError):
            attribute_closure(["a"], [fd("a", "b"), fd("a", "b", relation="S")])


class TestImplication:
    def test_transitivity(self):
        assert implies(CHAIN, fd("a", "c"))

    def test_augmentation(self):
        assert implies(CHAIN, fd(["a", "d"], ["b", "d"]))

    def test_non_implied(self):
        assert not implies(CHAIN, fd("c", "a"))
        assert not implies(CHAIN, fd("b", "a"))

    def test_reflexivity(self):
        assert implies([], fd(["a", "b"], "a"))


class TestMinimalCover:
    def test_removes_redundant(self):
        fds = CHAIN + [fd("a", "c")]  # a->c follows from the chain
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)
        assert len(cover) == 2

    def test_trims_extraneous_lhs(self):
        # In {a->b, ab->c}, the b in ab->c is extraneous.
        fds = [fd("a", "b"), fd(["a", "b"], "c")]
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)
        assert fd("a", "c") in cover

    def test_splits_rhs(self):
        fds = [fd("a", ["b", "c"])]
        cover = minimal_cover(fds)
        assert set(cover) == {fd("a", "b"), fd("a", "c")}

    def test_drops_trivial(self):
        assert minimal_cover([fd(["a", "b"], "a")]) == []

    def test_empty(self):
        assert minimal_cover([]) == []

    def test_deterministic(self):
        fds = [fd("b", "c"), fd("a", "b"), fd("a", "c")]
        assert minimal_cover(fds) == minimal_cover(list(reversed(fds)))


class TestKeys:
    def test_chain_key(self):
        attrs = ["a", "b", "c"]
        assert candidate_keys(attrs, CHAIN) == [frozenset({"a"})]
        assert is_superkey(["a"], attrs, CHAIN)
        assert not is_superkey(["b"], attrs, CHAIN)

    def test_composite_keys(self):
        attrs = ["a", "b", "c"]
        fds = [fd(["a", "b"], "c")]
        keys = candidate_keys(attrs, fds)
        assert keys == [frozenset({"a", "b"})]

    def test_multiple_keys(self):
        attrs = ["a", "b"]
        fds = [fd("a", "b"), fd("b", "a")]
        assert candidate_keys(attrs, fds) == [
            frozenset({"a"}),
            frozenset({"b"}),
        ]

    def test_no_fds_full_key(self):
        assert candidate_keys(["a", "b"], []) == [frozenset({"a", "b"})]


ATTRS = ["a", "b", "c", "d"]


@st.composite
def random_fds(draw):
    count = draw(st.integers(min_value=0, max_value=5))
    fds = []
    for _ in range(count):
        lhs = draw(st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2))
        rhs = draw(st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2))
        fds.append(fd(sorted(lhs), sorted(rhs)))
    return fds


@settings(max_examples=80, deadline=None)
@given(fds=random_fds(), seed=st.sets(st.sampled_from(ATTRS), min_size=1))
def test_closure_is_monotone_and_idempotent(fds, seed):
    closure = attribute_closure(seed, fds)
    assert seed <= closure
    assert attribute_closure(closure, fds) == closure


@settings(max_examples=80, deadline=None)
@given(fds=random_fds())
def test_minimal_cover_is_equivalent(fds):
    cover = minimal_cover(fds)
    assert equivalent(cover, fds)
    # Minimality: no dependency in the cover is implied by the rest.
    for dependency in cover:
        rest = [other for other in cover if other != dependency]
        assert not implies(rest, dependency) or not rest


@settings(max_examples=60, deadline=None)
@given(fds=random_fds())
def test_candidate_keys_are_minimal_superkeys(fds):
    keys = candidate_keys(ATTRS, fds)
    assert keys  # the full attribute set is always a superkey
    for key in keys:
        assert is_superkey(key, ATTRS, fds)
        for attr in key:
            assert not is_superkey(key - {attr}, ATTRS, fds)
    # Pairwise non-containment.
    for first, second in itertools.combinations(keys, 2):
        assert not first <= second and not second <= first
