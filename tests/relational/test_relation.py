"""Relation instances: insertion, set semantics, indexes."""

import pytest

from repro.errors import SchemaError
from repro.relational.relation import Relation, project
from repro.relational.schema import RelationSchema


@pytest.fixture
def rel() -> Relation:
    return Relation(RelationSchema("R", ["a", "b", "c"]))


def test_project():
    assert project((1, 2, 3), (2, 0)) == (3, 1)
    assert project((1, 2, 3), ()) == ()


def test_insert_and_contains(rel):
    assert rel.insert((1, 2, 3))
    assert (1, 2, 3) in rel
    assert (1, 2, 4) not in rel
    assert len(rel) == 1


def test_set_semantics(rel):
    assert rel.insert((1, 2, 3))
    assert not rel.insert((1, 2, 3))  # duplicate is a no-op
    assert len(rel) == 1


def test_insert_many(rel):
    assert rel.insert_many([(1, 1, 1), (2, 2, 2), (1, 1, 1)]) == 2
    assert len(rel) == 2


def test_insert_validates_arity(rel):
    with pytest.raises(SchemaError):
        rel.insert((1, 2))


def test_lookup_via_index(rel):
    rel.insert_many([(1, 2, 3), (1, 2, 4), (5, 2, 3)])
    assert rel.lookup((0,), (1,)) == {(1, 2, 3), (1, 2, 4)}
    assert rel.lookup((0, 1), (1, 2)) == {(1, 2, 3), (1, 2, 4)}
    assert rel.lookup((2,), (3,)) == {(1, 2, 3), (5, 2, 3)}
    assert rel.lookup((0,), (99,)) == set()


def test_index_maintained_after_build(rel):
    rel.insert((1, 2, 3))
    assert rel.lookup((0,), (1,)) == {(1, 2, 3)}
    rel.insert((1, 9, 9))  # index already exists: must be updated
    assert rel.lookup((0,), (1,)) == {(1, 2, 3), (1, 9, 9)}


def test_index_out_of_range(rel):
    with pytest.raises(SchemaError):
        rel.index_on((5,))


def test_projection(rel):
    rel.insert_many([(1, 2, 3), (1, 2, 4), (5, 6, 7)])
    assert rel.projection((0, 1)) == {(1, 2), (5, 6)}


def test_copy_is_independent(rel):
    rel.insert((1, 2, 3))
    clone = rel.copy()
    clone.insert((4, 5, 6))
    assert (4, 5, 6) not in rel
    assert (1, 2, 3) in clone
    assert clone.lookup((0,), (4,)) == {(4, 5, 6)}


def test_tuples_frozen_snapshot(rel):
    rel.insert((1, 2, 3))
    snapshot = rel.tuples
    rel.insert((4, 5, 6))
    assert snapshot == frozenset({(1, 2, 3)})


def test_iteration(rel):
    rel.insert_many([(1, 2, 3), (4, 5, 6)])
    assert set(rel) == {(1, 2, 3), (4, 5, 6)}
