"""Schema layer: attributes, relation schemas, database schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, RelationSchema, Schema


class TestAttribute:
    def test_untyped_accepts_anything(self):
        attr = Attribute("x")
        assert attr.accepts(1)
        assert attr.accepts("s")
        assert attr.accepts(2.5)
        assert attr.accepts(b"b")

    def test_int_attribute_rejects_bool_and_str(self):
        attr = Attribute("n", int)
        assert attr.accepts(3)
        assert not attr.accepts(True)
        assert not attr.accepts("3")

    def test_float_attribute_accepts_int(self):
        attr = Attribute("amount", float)
        assert attr.accepts(1.5)
        assert attr.accepts(2)
        assert not attr.accepts(True)

    def test_str_attribute(self):
        attr = Attribute("pk", str)
        assert attr.accepts("abc")
        assert not attr.accepts(1)

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("not an identifier")
        with pytest.raises(SchemaError):
            Attribute("")

    def test_unsupported_type_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", list)


class TestRelationSchema:
    def test_positions(self):
        rel = RelationSchema("R", ["a", "b", "c"])
        assert rel.arity == 3
        assert rel.position("b") == 1
        assert rel.positions(["c", "a"]) == (2, 0)
        assert rel.attribute_names == ("a", "b", "c")

    def test_unknown_attribute(self):
        rel = RelationSchema("R", ["a"])
        with pytest.raises(SchemaError):
            rel.position("zz")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_invalid_relation_name(self):
        with pytest.raises(SchemaError):
            RelationSchema("bad name", ["a"])

    def test_validate_tuple_arity(self):
        rel = RelationSchema("R", ["a", "b"])
        assert rel.validate_tuple((1, 2)) == (1, 2)
        with pytest.raises(SchemaError):
            rel.validate_tuple((1,))
        with pytest.raises(SchemaError):
            rel.validate_tuple((1, 2, 3))

    def test_validate_tuple_types(self):
        rel = RelationSchema("R", [Attribute("a", int), Attribute("b", str)])
        assert rel.validate_tuple((1, "x")) == (1, "x")
        with pytest.raises(SchemaError):
            rel.validate_tuple(("x", "x"))

    def test_equality_and_hash(self):
        r1 = RelationSchema("R", ["a", "b"])
        r2 = RelationSchema("R", ["a", "b"])
        r3 = RelationSchema("R", ["a", "c"])
        assert r1 == r2
        assert hash(r1) == hash(r2)
        assert r1 != r3


class TestSchema:
    def test_lookup_and_iteration(self):
        schema = Schema([RelationSchema("R", ["a"]), RelationSchema("S", ["b"])])
        assert "R" in schema
        assert "T" not in schema
        assert schema["S"].arity == 1
        assert len(schema) == 2
        assert schema.relation_names == ("R", "S")

    def test_duplicate_relation_rejected(self):
        schema = Schema([RelationSchema("R", ["a"])])
        with pytest.raises(SchemaError):
            schema.add(RelationSchema("R", ["b"]))

    def test_missing_relation(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema["nope"]
