"""Insert transactions: immutability, fact access, identity."""

from repro.relational.transaction import Transaction


def test_from_mapping():
    tx = Transaction({"R": [(1, 2)], "S": [(3,)]}, tx_id="T1")
    assert tx.tx_id == "T1"
    assert tx.tuples("R") == frozenset({(1, 2)})
    assert tx.tuples("S") == frozenset({(3,)})
    assert tx.tuples("missing") == frozenset()
    assert len(tx) == 2


def test_from_fact_pairs():
    tx = Transaction([("R", (1, 2)), ("R", (3, 4))])
    assert tx.tuples("R") == frozenset({(1, 2), (3, 4)})
    assert set(tx.relation_names) == {"R"}


def test_auto_ids_are_unique():
    a = Transaction({"R": [(1,)]})
    b = Transaction({"R": [(1,)]})
    assert a.tx_id != b.tx_id


def test_duplicate_facts_collapse():
    tx = Transaction([("R", (1, 2)), ("R", (1, 2))])
    assert len(tx) == 1


def test_iteration_and_contains():
    tx = Transaction({"R": [(1, 2)]}, tx_id="T")
    assert ("R", (1, 2)) in tx
    assert ("R", (9, 9)) not in tx
    assert list(tx) == [("R", (1, 2))]


def test_equality_requires_id_and_facts():
    a = Transaction({"R": [(1,)]}, tx_id="T")
    b = Transaction({"R": [(1,)]}, tx_id="T")
    c = Transaction({"R": [(1,)]}, tx_id="U")
    d = Transaction({"R": [(2,)]}, tx_id="T")
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert a != d


def test_hashable_as_graph_node():
    a = Transaction({"R": [(1,)]}, tx_id="T")
    b = Transaction({"R": [(1,)]}, tx_id="U")
    assert len({a, b}) == 2


def test_values_coerced_to_tuples():
    tx = Transaction({"R": [[1, 2]]}, tx_id="T")
    assert tx.tuples("R") == frozenset({(1, 2)})
