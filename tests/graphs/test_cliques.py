"""Bron–Kerbosch maximal cliques, cross-checked against networkx."""

import itertools

import networkx as nx
import pytest

from repro.graphs import UndirectedGraph, bron_kerbosch, maximal_cliques
from repro.graphs.cliques import is_clique, maximal_cliques_containing


def _as_nx(graph: UndirectedGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.nodes)
    g.add_edges_from(graph.edges())
    return g


def _nx_cliques(graph: UndirectedGraph) -> set[frozenset]:
    return {frozenset(c) for c in nx.find_cliques(_as_nx(graph))}


def test_triangle_plus_pendant():
    g = UndirectedGraph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    cliques = set(maximal_cliques(g))
    assert cliques == {frozenset({1, 2, 3}), frozenset({3, 4})}


def test_empty_graph():
    assert maximal_cliques(UndirectedGraph()) == []


def test_isolated_nodes_are_cliques():
    g = UndirectedGraph(nodes=[1, 2])
    assert set(maximal_cliques(g)) == {frozenset({1}), frozenset({2})}


def test_complete_graph_single_clique():
    g = UndirectedGraph(
        edges=[(i, j) for i in range(6) for j in range(i + 1, 6)]
    )
    assert set(maximal_cliques(g)) == {frozenset(range(6))}


def test_matching_complement_structure():
    # Complete graph on 6 nodes minus a perfect matching: pick one
    # endpoint per matched pair -> 2^3 maximal cliques.
    nodes = list(range(6))
    matching = {frozenset({0, 1}), frozenset({2, 3}), frozenset({4, 5})}
    g = UndirectedGraph(nodes=nodes)
    for i, j in itertools.combinations(nodes, 2):
        if frozenset({i, j}) not in matching:
            g.add_edge(i, j)
    cliques = set(maximal_cliques(g))
    assert len(cliques) == 8
    assert all(len(c) == 3 for c in cliques)


@pytest.mark.parametrize("pivot", [True, False])
def test_matches_networkx_on_fixed_graphs(pivot):
    graphs = [
        UndirectedGraph(edges=[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)]),
        UndirectedGraph(edges=[(i, i + 1) for i in range(9)]),  # path
        UndirectedGraph(edges=[(0, i) for i in range(1, 8)]),  # star
    ]
    for g in graphs:
        assert set(bron_kerbosch(g, pivot=pivot)) == _nx_cliques(g)


def test_pivot_and_no_pivot_agree():
    g = UndirectedGraph(
        edges=[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (5, 1), (2, 5)]
    )
    assert set(bron_kerbosch(g, pivot=True)) == set(bron_kerbosch(g, pivot=False))


def test_is_clique():
    g = UndirectedGraph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    assert is_clique(g, {1, 2, 3})
    assert is_clique(g, {3, 4})
    assert is_clique(g, {1})
    assert is_clique(g, set())
    assert not is_clique(g, {1, 4})


class TestCliquesContaining:
    def test_seed_extension(self):
        g = UndirectedGraph(edges=[(1, 2), (2, 3), (1, 3), (3, 4), (1, 4)])
        cliques = set(maximal_cliques_containing(g, frozenset({1, 3})))
        expected = {
            c for c in _nx_cliques(g) if {1, 3} <= c
        }
        assert cliques == expected

    def test_non_clique_seed_yields_nothing(self):
        g = UndirectedGraph(edges=[(1, 2), (3, 4)])
        assert list(maximal_cliques_containing(g, frozenset({1, 3}))) == []

    def test_empty_seed_is_all_cliques(self):
        g = UndirectedGraph(edges=[(1, 2), (3, 4)])
        assert set(maximal_cliques_containing(g, frozenset())) == set(
            maximal_cliques(g)
        )

    def test_seed_with_no_extension(self):
        g = UndirectedGraph(edges=[(1, 2)])
        assert set(maximal_cliques_containing(g, frozenset({1, 2}))) == {
            frozenset({1, 2})
        }

    def test_unknown_seed_node(self):
        g = UndirectedGraph(edges=[(1, 2)])
        assert list(maximal_cliques_containing(g, frozenset({99}))) == []
