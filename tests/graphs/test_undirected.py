"""The adjacency-set graph type."""

from repro.graphs import UndirectedGraph


def test_nodes_and_edges():
    g = UndirectedGraph(nodes=["a"], edges=[("a", "b"), ("b", "c")])
    assert g.nodes == {"a", "b", "c"}
    assert g.has_edge("a", "b")
    assert g.has_edge("b", "a")
    assert not g.has_edge("a", "c")
    assert g.edge_count() == 2
    assert len(g) == 3


def test_self_loops_ignored():
    g = UndirectedGraph(edges=[("a", "a")])
    assert "a" in g
    assert g.edge_count() == 0
    assert not g.has_edge("a", "a")


def test_neighbors_and_degree():
    g = UndirectedGraph(edges=[("a", "b"), ("a", "c")])
    assert g.neighbors("a") == {"b", "c"}
    assert g.degree("a") == 2
    assert g.degree("b") == 1
    assert g.neighbors("zz") == frozenset()


def test_remove_node():
    g = UndirectedGraph(edges=[("a", "b"), ("b", "c")])
    g.remove_node("b")
    assert "b" not in g
    assert g.neighbors("a") == frozenset()
    assert g.edge_count() == 0
    g.remove_node("nonexistent")  # no-op


def test_subgraph():
    g = UndirectedGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
    sub = g.subgraph(["a", "b", "c", "zz"])
    assert sub.nodes == {"a", "b", "c"}
    assert sub.has_edge("a", "b")
    assert sub.has_edge("b", "c")
    assert not sub.has_edge("c", "d")


def test_edges_iteration_no_duplicates():
    g = UndirectedGraph(edges=[("a", "b"), ("b", "c")])
    edges = {frozenset(e) for e in g.edges()}
    assert edges == {frozenset({"a", "b"}), frozenset({"b", "c"})}


def test_adjacency_snapshot():
    g = UndirectedGraph(edges=[("a", "b")])
    adj = g.adjacency()
    assert adj == {"a": frozenset({"b"}), "b": frozenset({"a"})}
