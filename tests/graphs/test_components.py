"""Connected components."""

from repro.graphs import UndirectedGraph, connected_components
from repro.graphs.components import component_of


def test_basic_components():
    g = UndirectedGraph(edges=[(1, 2), (2, 3), (4, 5)], nodes=[6])
    components = {frozenset(c) for c in connected_components(g)}
    assert components == {
        frozenset({1, 2, 3}),
        frozenset({4, 5}),
        frozenset({6}),
    }


def test_empty_graph():
    assert connected_components(UndirectedGraph()) == []


def test_single_component():
    g = UndirectedGraph(edges=[(i, i + 1) for i in range(10)])
    components = connected_components(g)
    assert len(components) == 1
    assert components[0] == frozenset(range(11))


def test_component_of():
    g = UndirectedGraph(edges=[(1, 2), (4, 5)])
    assert component_of(g, 1) == frozenset({1, 2})
    assert component_of(g, 5) == frozenset({4, 5})
    assert component_of(g, 99) == frozenset()


def test_components_partition_nodes():
    g = UndirectedGraph(edges=[(1, 2), (3, 4), (4, 5)], nodes=[9])
    components = connected_components(g)
    seen = [n for c in components for n in c]
    assert sorted(seen) == sorted(g.nodes)
