"""The markdown report generator and its shape checks."""

import pytest

from repro.workloads.experiments import Experiment, ExperimentSuite, Row
from repro.workloads.report import check_shape, main, render_markdown


def _experiment(name, rows):
    return Experiment(name=name, description="test", rows=rows)


class TestShapeChecks:
    def test_6b_opt_wins(self):
        rows = [
            Row("qs", "naive", 0.010, False),
            Row("qs", "opt", 0.001, False),
            Row("qp3", "naive", 0.020, False),
            Row("qp3", "opt", 0.010, False),
        ]
        verdict = check_shape(_experiment("Figure 6b", rows))
        assert verdict.holds is True

    def test_6b_allows_one_reversal(self):
        rows = [
            Row("qs", "naive", 0.010, False),
            Row("qs", "opt", 0.001, False),
            Row("qr3", "naive", 0.010, False),
            Row("qr3", "opt", 0.030, False),  # the paper's q_r3 reversal
        ]
        assert check_shape(_experiment("Figure 6b", rows)).holds is True

    def test_6a_short_circuit_shape(self):
        rows = [Row("qs", "naive", 0.0001, True, worlds=0)]
        assert check_shape(_experiment("Figure 6a", rows)).holds is True
        rows = [Row("qs", "naive", 0.0001, True, worlds=3)]
        assert check_shape(_experiment("Figure 6a", rows)).holds is False

    def test_6f_few_contradictions_expensive(self):
        rows = [
            Row("10", "naive", 0.030, False),
            Row("50", "naive", 0.020, False),
        ]
        assert check_shape(_experiment("Figure 6f", rows)).holds is True

    def test_unknown_experiment_unchecked(self):
        assert check_shape(_experiment("Table 1", [])).holds is None


class TestRendering:
    def test_markdown_structure(self):
        rows = [Row("qs", "opt", 0.002, False)]
        text = render_markdown([_experiment("Figure 6b", rows)])
        assert "## Figure 6b" in text
        assert "| qs | opt | 2.000 ms | violated |" in text
        assert "Paper's shape" in text

    def test_live_quick_report(self, tmp_path):
        """End to end: run the quick suite and write the report."""
        out = tmp_path / "MEASURED.md"
        code = main(["--quick", "--repeats", "1", "-o", str(out)])
        assert code == 0
        text = out.read_text()
        assert "# Measured experiment report" in text
        # Every artefact section is present.
        for name in ["Table 1"] + [f"Figure 6{c}" for c in "abcdefgh"]:
            assert f"## {name}" in text
        # The headline shape must hold even on smoke-sized data.
        assert "**HOLDS** (all satisfied checks skipped world enumeration)" in text
