"""The programmatic experiment runner (quick mode)."""

import pytest

from repro.workloads.experiments import ExperimentSuite, main


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(quick=True, repeats=1)


class TestSeries:
    def test_table1_rows(self, suite):
        experiment = suite.table1()
        assert len(experiment.rows) == 3
        assert all("blk" in row.label for row in experiment.rows)

    def test_figure6a_all_satisfied(self, suite):
        experiment = suite.figure6a()
        assert len(experiment.rows) == 7  # 3 families ×2 algs + qa naive
        assert all(row.satisfied for row in experiment.rows)

    def test_figure6b_all_violated(self, suite):
        experiment = suite.figure6b()
        assert all(not row.satisfied for row in experiment.rows)
        assert {row.algorithm for row in experiment.rows} == {"naive", "opt"}

    def test_figure6d_shape(self, suite):
        experiment = suite.figure6d()
        naive = [r.seconds for r in experiment.rows if r.algorithm == "naive"]
        opt = [r.seconds for r in experiment.rows if r.algorithm == "opt"]
        assert len(naive) == len(opt) == 3
        assert all(not row.satisfied for row in experiment.rows)

    def test_figure6h_covers_presets(self, suite):
        experiment = suite.figure6h()
        labels = {row.label for row in experiment.rows}
        assert labels == {"D100-S", "D200-S", "D300-S"}

    def test_satisfied_runs_are_faster(self, suite):
        fast = max(row.seconds for row in suite.figure6a().rows)
        slow = min(
            row.seconds
            for row in suite.figure6b().rows
            if row.algorithm == "naive"
        )
        assert fast < slow  # the headline shape of the whole evaluation

    def test_csv_format(self, suite):
        experiment = suite.figure6a()
        csv = experiment.csv()
        lines = csv.splitlines()
        assert lines[0] == "label,algorithm,seconds,satisfied,worlds"
        assert len(lines) == len(experiment.rows) + 1


class TestMain:
    def test_main_quick_with_csv(self, tmp_path, capsys):
        code = main(["--quick", "--repeats", "1", "--csv-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6h" in out
        written = sorted(p.name for p in tmp_path.iterdir())
        assert "table_1.csv" in written
        assert "figure_6f.csv" in written
        assert len(written) == 9
