"""Query builders and constant picking for the experiment workloads."""

import pytest

from repro.bitcoin.generator import DatasetSpec, generate_dataset
from repro.core.checker import DCSatChecker
from repro.errors import ReproError
from repro.query.analysis import is_connected, is_monotone
from repro.workloads import (
    ConstantPicker,
    aggregate_constraint,
    fresh_address,
    path_constraint,
    simple_constraint,
    star_constraint,
)

SPEC = DatasetSpec(
    name="workload-test",
    committed_blocks=20,
    pending_blocks=8,
    txs_per_block=6,
    users=12,
    contradictions=5,
    seed=11,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(SPEC)


@pytest.fixture(scope="module")
def checker(dataset):
    return DCSatChecker(
        dataset.to_blockchain_database(), assume_nonnegative_sums=True
    )


@pytest.fixture(scope="module")
def picker(dataset):
    return ConstantPicker(dataset)


class TestQueryShapes:
    def test_simple(self):
        q = simple_constraint("X")
        assert is_connected(q)
        assert is_monotone(q)
        assert len(q.atoms) == 1

    def test_path_structure(self):
        q = path_constraint(3, "X", "Y")
        assert is_connected(q)
        assert is_monotone(q)
        assert len(q.positive_atoms) == 6  # TxOut+TxIn per hop
        assert q.name == "q_p3"

    def test_path_length_one(self):
        q = path_constraint(1, "X")
        assert len(q.positive_atoms) == 2

    def test_path_invalid_length(self):
        with pytest.raises(ReproError):
            path_constraint(0, "X")

    def test_star_structure(self):
        q = star_constraint(3, "X")
        assert is_connected(q)  # arms share the constant X
        assert len(q.positive_atoms) == 6
        assert len(q.comparisons) == 3  # pairwise !=

    def test_star_invalid(self):
        with pytest.raises(ReproError):
            star_constraint(0, "X")

    def test_aggregate(self):
        q = aggregate_constraint("X", 100)
        assert q.func == "sum"
        assert q.op == ">="
        assert is_monotone(q, assume_nonnegative=True)

    def test_fresh_address_stable_and_distinct(self):
        assert fresh_address(1) == fresh_address(1)
        assert fresh_address(1) != fresh_address(2)


class TestSatisfiedConstants:
    def test_all_families_satisfied_with_fresh_addresses(self, checker):
        queries = [
            simple_constraint(fresh_address(1)),
            path_constraint(3, fresh_address(2), fresh_address(3)),
            star_constraint(3, fresh_address(4)),
            aggregate_constraint(fresh_address(5), 10),
        ]
        for q in queries:
            result = checker.check(q, algorithm="naive")
            assert result.satisfied, q.name


class TestUnsatisfiedConstants:
    def test_simple(self, checker, picker):
        q = simple_constraint(picker.pending_recipient())
        result = checker.check(q, algorithm="naive")
        assert not result.satisfied
        assert result.witness  # requires pending transactions

    def test_path(self, checker, picker):
        source, sink = picker.path_endpoints(2)
        q = path_constraint(2, source, sink)
        result = checker.check(q, algorithm="naive")
        assert not result.satisfied

    def test_star(self, checker, picker):
        source = picker.star_source(2)
        q = star_constraint(2, source)
        result = checker.check(q, algorithm="naive")
        assert not result.satisfied

    def test_aggregate(self, checker, picker):
        address, threshold = picker.aggregate_target()
        q = aggregate_constraint(address, threshold)
        result = checker.check(q, algorithm="naive")
        assert not result.satisfied
        assert result.witness  # the current state alone is below threshold

    def test_naive_and_opt_agree(self, checker, picker):
        source, sink = picker.path_endpoints(2)
        q = path_constraint(2, source, sink)
        naive = checker.check(q, algorithm="naive")
        opt = checker.check(q, algorithm="opt")
        assert naive.satisfied == opt.satisfied is False

    def test_impossible_path_raises(self, picker):
        with pytest.raises(ReproError):
            picker.path_endpoints(500)

    def test_impossible_star_raises(self, picker):
        with pytest.raises(ReproError):
            picker.star_source(10_000)
