"""The bitset planner: interning, mask sweeps, planner selection.

The contract under test is *byte-identical plans*: every clique stream
the :class:`~repro.core.bitset.BitsetFdGraph` emits must equal — same
frozensets, same order — the stream of the set-based
:class:`~repro.core.fd_graph.FdTransactionGraph`, with and without
pivoting, restricted or not, through churn, and under both the pure
``int`` and the numpy pivot paths.
"""

import random

import pytest

from repro.core import bitset as bitset_mod
from repro.core.bitset import (
    BitsetFdGraph,
    BitsetPlanner,
    NumpyPivot,
    SetPlanner,
    TxInterner,
    make_fd_graph,
    make_planner,
    mask_bron_kerbosch,
    python_pivot,
    resolve_planner_name,
)
from repro.core.fd_graph import FdTransactionGraph
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.graphs import UndirectedGraph, bron_kerbosch
from tests.core.test_engine_parity import db_copy, random_db


class TestTxInterner:
    def test_dense_assignment(self):
        interner = TxInterner()
        assert [interner.intern(t) for t in ("a", "b", "c")] == [0, 1, 2]
        assert interner.intern("a") == 0  # idempotent
        assert len(interner) == 3
        assert interner.capacity == 3

    def test_lowest_slot_reuse(self):
        interner = TxInterner()
        for t in ("a", "b", "c", "d"):
            interner.intern(t)
        interner.release("b")
        interner.release("c")
        assert interner.intern("e") == 1  # lowest released slot first
        assert interner.intern("f") == 2
        assert interner.intern("g") == 4  # heap drained: grow
        assert interner.capacity == 5

    def test_release_unknown_is_none(self):
        assert TxInterner().release("nope") is None

    def test_mask_round_trip(self):
        interner = TxInterner()
        for t in ("a", "b", "c"):
            interner.intern(t)
        mask = interner.mask_of(["c", "a", "unknown"])
        assert mask == 0b101
        assert interner.ids_of(mask) == ["a", "c"]

    def test_dead_slot_lookup_raises(self):
        interner = TxInterner()
        interner.intern("a")
        interner.release("a")
        with pytest.raises(KeyError):
            interner.id_of(0)


def random_mask_graph(rng: random.Random, n: int, density: float):
    """Paired set-graph (nodes 0..n-1) and adjacency-mask list."""
    graph = UndirectedGraph(nodes=range(n))
    masks = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                graph.add_edge(i, j)
                masks[i] |= 1 << j
                masks[j] |= 1 << i
    return graph, masks


def mask_to_set(mask: int) -> frozenset:
    return frozenset(
        index for index in range(mask.bit_length()) if mask >> index & 1
    )


class TestMaskBronKerbosch:
    @pytest.mark.parametrize("pivot", [True, False])
    @pytest.mark.parametrize("seed", range(6))
    def test_stream_matches_set_bron_kerbosch(self, seed, pivot):
        rng = random.Random(seed)
        n = rng.randrange(1, 14)
        graph, masks = random_mask_graph(rng, n, rng.choice((0.2, 0.5, 0.8)))
        expected = list(bron_kerbosch(graph, pivot=pivot))
        actual = [
            mask_to_set(clique)
            for clique in mask_bron_kerbosch(masks, (1 << n) - 1, pivot=pivot)
        ]
        # Same cliques in the same order: the plan-parity contract.
        assert actual == expected

    def test_empty_pool_yields_nothing(self):
        assert list(mask_bron_kerbosch([0b10, 0b01], 0)) == []

    def test_pool_restriction(self):
        # Triangle 0-1-2; restricting to {0, 1} must see only that edge.
        masks = [0b110, 0b101, 0b011]
        assert list(mask_bron_kerbosch(masks, 0b011)) == [0b011]


class TestNumpyPivot:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_python_pivot(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(2, 200)
        _, masks = random_mask_graph(rng, n, rng.choice((0.1, 0.5, 0.9)))
        chooser = NumpyPivot(masks)
        full = (1 << n) - 1
        for _ in range(40):
            p = rng.getrandbits(n) & full
            x = rng.getrandbits(n) & full & ~p
            if not p:
                p = 1 << rng.randrange(n)
                x &= ~p
            assert chooser(masks, p, x) == python_pivot(masks, p, x)

    def test_clique_stream_identical_across_pivot_paths(self):
        rng = random.Random(7)
        n = 70  # past NUMPY_MIN_NODES
        _, masks = random_mask_graph(rng, n, 0.85)
        full = (1 << n) - 1
        via_python = list(
            mask_bron_kerbosch(masks, full, choose_pivot=python_pivot)
        )
        via_numpy = list(
            mask_bron_kerbosch(masks, full, choose_pivot=NumpyPivot(masks))
        )
        assert via_python == via_numpy

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_BITSET_NUMPY", "0")
        assert bitset_mod.make_pivot_chooser([0] * 100) is python_pivot
        monkeypatch.delenv("REPRO_BITSET_NUMPY")
        monkeypatch.setattr(bitset_mod, "NUMPY_MIN_NODES", 4)
        assert isinstance(bitset_mod.make_pivot_chooser([0] * 5), NumpyPivot)


class TestBitsetFdGraphParity:
    @pytest.mark.parametrize("pivot", [True, False])
    @pytest.mark.parametrize("seed", range(8))
    def test_clique_stream_parity_on_random_instances(self, seed, pivot):
        db = random_db(random.Random(seed))
        set_graph = FdTransactionGraph(Workspace(db_copy(db)))
        bit_graph = BitsetFdGraph(Workspace(db_copy(db)))
        bit_graph.verify_masks()
        assert bit_graph.nodes == set_graph.nodes
        assert bit_graph.conflicts == set_graph.conflicts
        assert bit_graph.never_appendable == set_graph.never_appendable
        assert list(bit_graph.maximal_cliques(pivot=pivot)) == list(
            set_graph.maximal_cliques(pivot=pivot)
        )
        restrict = sorted(set_graph.nodes)[: max(1, len(set_graph.nodes) // 2)]
        assert list(
            bit_graph.maximal_cliques(restrict=restrict, pivot=pivot)
        ) == list(set_graph.maximal_cliques(restrict=restrict, pivot=pivot))

    def test_parity_survives_churn(self):
        db = random_db(random.Random(42))
        set_graph = FdTransactionGraph(Workspace(db_copy(db)))
        bit_graph = BitsetFdGraph(Workspace(db_copy(db)))
        victims = sorted(set_graph.nodes)[:2]
        for graph in (set_graph, bit_graph):
            for tx_id in victims:
                graph.remove_transaction(tx_id)
            for tx_id in victims:
                graph.add_transaction(tx_id)
        bit_graph.verify_masks()
        assert bit_graph.conflicts == set_graph.conflicts
        assert list(bit_graph.maximal_cliques()) == list(
            set_graph.maximal_cliques()
        )

    def test_numpy_path_emits_the_same_plan(self, monkeypatch):
        # Force the numpy pivot on for any contested-node count and
        # re-check stream equality against the set-based sweep.
        monkeypatch.setattr(bitset_mod, "NUMPY_MIN_NODES", 1)
        db = random_db(random.Random(3))
        set_graph = FdTransactionGraph(Workspace(db_copy(db)))
        bit_graph = BitsetFdGraph(Workspace(db_copy(db)))
        assert list(bit_graph.maximal_cliques()) == list(
            set_graph.maximal_cliques()
        )

    def test_restrict_appendable(self):
        db = random_db(random.Random(5))
        graph = BitsetFdGraph(Workspace(db))
        nodes = sorted(graph.nodes)
        probe = set(nodes[:2]) | {"unknown"} | set(graph.never_appendable)
        assert graph.restrict_appendable(probe) == set(nodes[:2])


class TestPlannerSelection:
    def test_explicit_names(self):
        assert resolve_planner_name("set") == "set"
        assert resolve_planner_name("bitset") == "bitset"

    def test_unknown_name_raises(self):
        with pytest.raises(AlgorithmError, match="unknown planner"):
            resolve_planner_name("bitest")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BITSET", raising=False)
        assert resolve_planner_name(None) == "set"
        for flag in ("1", "true", "ON", "bitset"):
            monkeypatch.setenv("REPRO_BITSET", flag)
            assert resolve_planner_name(None) == "bitset"
        for flag in ("0", "false", "off", "set", ""):
            monkeypatch.setenv("REPRO_BITSET", flag)
            assert resolve_planner_name(None) == "set"

    def test_env_typo_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BITSET", "bitest")
        with pytest.raises(AlgorithmError, match="REPRO_BITSET"):
            resolve_planner_name(None)

    def test_make_planner_and_graph(self, monkeypatch):
        monkeypatch.delenv("REPRO_BITSET", raising=False)
        assert isinstance(make_planner(None), SetPlanner)
        assert isinstance(make_planner("bitset"), BitsetPlanner)
        db = random_db(random.Random(0))
        assert type(make_fd_graph("set", Workspace(db))) is FdTransactionGraph
        monkeypatch.setenv("REPRO_BITSET", "1")
        assert type(make_fd_graph(None, Workspace(db))) is BitsetFdGraph
