"""Certain and possible answers (Section 5's observation, executable)."""

import pytest

from repro.core.certain import (
    certain_answers,
    certain_answers_monotone,
    possible_answers,
)
from repro.errors import AlgorithmError
from repro.query.parser import parse_query


class TestCertainAnswers:
    def test_monotone_shortcut_equals_general_definition(self, figure2):
        queries = [
            "q() <- TxOut(t, s, pk, a)",
            "q() <- TxOut(t, s, pk, a), TxIn(t, s, pk, a, n, g)",
            "q() <- TxOut(t, s, 'U4Pk', a)",
        ]
        for text in queries:
            query = parse_query(text)
            assert certain_answers(figure2, query) == certain_answers_monotone(
                figure2, query
            ), text

    def test_pending_only_facts_are_not_certain(self, figure2):
        query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
        assert certain_answers(figure2, query) == set()

    def test_committed_facts_are_certain(self, figure2):
        query = parse_query("q() <- TxOut(3, s, pk, a)")
        answers = certain_answers(figure2, query)
        # Tx 3 has three committed outputs.
        assert len(answers) == 3

    def test_shortcut_rejects_non_monotone(self, figure2):
        query = parse_query(
            "q() <- TxOut(t, s, pk, a), not TxIn(t, s, pk, a, t, 'x')"
        )
        with pytest.raises(AlgorithmError):
            certain_answers_monotone(figure2, query)

    def test_general_definition_handles_negation(self, figure2):
        # "Outputs not spent by transaction 7 (T4)": T4 only spends
        # pending outputs, so every committed output remains a certain
        # answer even under the negation.
        query = parse_query(
            "q() <- TxOut(t, s, pk, a), not TxIn(t, s, pk, a, 7, 'U4Sig')"
        )
        answers = certain_answers(figure2, query)
        assert len(answers) == 6

    def test_negation_can_remove_certainty(self, figure2):
        # TxOut(2,2) is committed, but in worlds containing T1 the
        # negated fact (its spend, newTxId 4) appears — not certain.
        query = parse_query(
            "q() <- TxOut(2, 2, pk, a), not TxIn(2, 2, pk, a, 4, 'U2Sig')"
        )
        assert certain_answers(figure2, query) == set()
        # Sanity: it IS an answer over R alone.
        from repro.query.evaluator import evaluate

        assert evaluate(query, figure2.current)


class TestPossibleAnswers:
    def test_superset_of_certain(self, figure2):
        query = parse_query("q() <- TxOut(t, s, pk, a)")
        certain = certain_answers(figure2, query)
        possible = possible_answers(figure2, query)
        assert certain <= possible

    def test_includes_pending_reachable_facts(self, figure2):
        query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
        assert possible_answers(figure2, query)

    def test_excludes_unreachable_facts(self, figure2):
        query = parse_query("q() <- TxOut(t, s, 'MartianPk', a)")
        assert possible_answers(figure2, query) == set()

    def test_conflicting_transfers_both_possible(self, figure2):
        # U7Pk can receive 2.5 (via T4) or 4.0 (via T5) — in different
        # worlds; both are possible answers.
        query = parse_query("q() <- TxOut(t, s, 'U7Pk', a)")
        amounts = {answer[0] for answer in possible_answers(figure2, query)}
        assert amounts == {2.5, 4.0}

    def test_requires_monotone(self, figure2):
        query = parse_query(
            "q() <- TxOut(t, s, pk, a), not TxIn(t, s, pk, a, t, 'x')"
        )
        with pytest.raises(AlgorithmError):
            possible_answers(figure2, query)

    def test_matches_brute_force_union(self, figure2):
        from repro.core.possible_worlds import (
            enumerate_possible_worlds,
            world_database,
        )
        from repro.query.evaluator import iter_assignments

        query = parse_query("q() <- TxOut(t, s, pk, a), TxIn(t, s, pk, a, n, g)")
        names = sorted(v.name for v in query.variables)
        expected = set()
        for world in enumerate_possible_worlds(figure2):
            materialized = world_database(figure2, world)
            for assignment in iter_assignments(query, materialized):
                expected.add(tuple(assignment[n] for n in names))
        assert possible_answers(figure2, query) == expected
