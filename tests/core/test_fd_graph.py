"""The fd-transaction graph G^fd_T (Figure 3, left)."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.fd_graph import FdTransactionGraph
from repro.core.workspace import Workspace
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


@pytest.fixture
def figure2_graph(figure2):
    return FdTransactionGraph(Workspace(figure2))


class TestFigure3:
    def test_t1_t5_conflict(self, figure2_graph):
        # Figure 3: T1 and T5 spend the same TxIn key (double spend).
        assert not figure2_graph.has_edge("T1", "T5")
        assert figure2_graph.conflicts["T1"] == {"T5"}
        assert figure2_graph.conflicts["T5"] == {"T1"}

    def test_all_other_pairs_are_edges(self, figure2_graph):
        ids = ["T1", "T2", "T3", "T4", "T5"]
        for i, u in enumerate(ids):
            for v in ids[i + 1 :]:
                expected = {u, v} != {"T1", "T5"}
                assert figure2_graph.has_edge(u, v) is expected

    def test_maximal_cliques_match_example6(self, figure2_graph):
        cliques = set(figure2_graph.maximal_cliques())
        assert cliques == {
            frozenset({"T2", "T3", "T4", "T5"}),
            frozenset({"T1", "T2", "T3", "T4"}),
        }

    def test_verify_against_pairwise_definition(self, figure2_graph):
        figure2_graph.verify_against()


class TestPruning:
    def _db(self, pending):
        schema = make_schema({"R": ["a", "b"]})
        constraints = ConstraintSet(schema, [Key("R", ["a"], schema)])
        current = Database.from_dict(schema, {"R": [(1, "committed")]})
        return BlockchainDatabase(current, constraints, pending)

    def test_base_clash_pruned(self):
        db = self._db([Transaction({"R": [(1, "different")]}, tx_id="T1")])
        graph = FdTransactionGraph(Workspace(db))
        assert graph.nodes == set()
        assert graph.never_appendable == {"T1"}

    def test_internally_inconsistent_pruned(self):
        db = self._db([Transaction({"R": [(5, "x"), (5, "y")]}, tx_id="T1")])
        graph = FdTransactionGraph(Workspace(db))
        assert graph.never_appendable == {"T1"}

    def test_same_tuple_as_base_not_pruned(self):
        db = self._db([Transaction({"R": [(1, "committed")]}, tx_id="T1")])
        graph = FdTransactionGraph(Workspace(db))
        assert graph.nodes == {"T1"}


class TestMaintenance:
    def _graph(self):
        schema = make_schema({"R": ["a", "b"]})
        constraints = ConstraintSet(schema, [Key("R", ["a"], schema)])
        db = BlockchainDatabase(
            Database.from_dict(schema, {"R": []}),
            constraints,
            [
                Transaction({"R": [(1, "x")]}, tx_id="T1"),
                Transaction({"R": [(1, "y")]}, tx_id="T2"),
            ],
        )
        ws = Workspace(db)
        return ws, FdTransactionGraph(ws)

    def test_add_transaction(self):
        ws, graph = self._graph()
        ws.issue(Transaction({"R": [(1, "x")]}, tx_id="T3"))
        graph.add_transaction("T3")
        # T3 agrees with T1 (same tuple) but clashes with T2.
        assert graph.has_edge("T1", "T3")
        assert not graph.has_edge("T2", "T3")

    def test_remove_transaction(self):
        ws, graph = self._graph()
        graph.remove_transaction("T2")
        assert graph.nodes == {"T1"}
        assert graph.conflicts["T1"] == set()

    def test_commit_invalidates_conflicting(self):
        ws, graph = self._graph()
        ws.commit("T1")  # (1, 'x') now committed
        graph.remove_transaction("T1")
        graph.refresh_after_commit()
        assert "T2" in graph.never_appendable
        assert graph.nodes == set()

    def test_conflicted_and_free(self):
        _, graph = self._graph()
        assert graph.conflicted_nodes() == {"T1", "T2"}
        assert graph.free_nodes() == set()
        assert graph.conflict_count() == 1


class TestRestrictedCliques:
    def test_restrict(self, figure2_graph):
        cliques = set(figure2_graph.maximal_cliques(restrict={"T1", "T5", "T3"}))
        assert cliques == {frozenset({"T1", "T3"}), frozenset({"T5", "T3"})}

    def test_restrict_to_free_only(self, figure2_graph):
        cliques = list(figure2_graph.maximal_cliques(restrict={"T2", "T3"}))
        assert cliques == [frozenset({"T2", "T3"})]

    def test_restrict_empty(self, figure2_graph):
        cliques = list(figure2_graph.maximal_cliques(restrict=set()))
        assert cliques == [frozenset()]

    def test_is_clique(self, figure2_graph):
        assert figure2_graph.is_clique({"T1", "T2", "T3"})
        assert not figure2_graph.is_clique({"T1", "T5"})
        assert not figure2_graph.is_clique({"T1", "unknown"})
        assert figure2_graph.is_clique(set())


class TestGroupIndexPruning:
    """Churn regression: ``_group_index`` must shrink back after
    add→remove cycles — a long-running monitor must not leak dead
    groups or scan them on every subsequent ``_add_node``."""

    def _db(self):
        schema = make_schema({"R": ["a", "b"]})
        constraints = ConstraintSet(schema, [Key("R", ["a"], schema)])
        return BlockchainDatabase(
            Database.from_dict(schema, {"R": []}), constraints, []
        )

    def test_group_index_shrinks_after_churn(self):
        ws = Workspace(self._db())
        graph = FdTransactionGraph(ws)
        assert graph._group_index == {}
        for cycle in range(3):
            ids = [f"T{cycle}_{i}" for i in range(8)]
            for index, tx_id in enumerate(ids):
                # Distinct keys per transaction: each occupies its own
                # group; half also contest a shared key.
                facts = [(f"{cycle}k{index}", "v")]
                if index % 2:
                    facts.append((f"{cycle}shared", f"v{index}"))
                ws.issue(Transaction({"R": facts}, tx_id=tx_id))
                graph.add_transaction(tx_id)
            assert len(graph._group_index) == len(ids) + 1
            for tx_id in ids:
                ws.forget(tx_id)
                graph.remove_transaction(tx_id)
            assert graph._group_index == {}
            assert graph._tx_signatures == {}
        assert graph.nodes == set()

    def test_partial_removal_keeps_shared_groups(self):
        ws = Workspace(self._db())
        graph = FdTransactionGraph(ws)
        ws.issue(Transaction({"R": [("k", "x")]}, tx_id="T1"))
        ws.issue(Transaction({"R": [("k", "y")]}, tx_id="T2"))
        graph.add_transaction("T1")
        graph.add_transaction("T2")
        assert len(graph._group_index) == 1
        graph.remove_transaction("T1")
        # T2 still occupies the group: only T1's rhs bucket goes away.
        (bucket,) = graph._group_index.values()
        assert len(bucket) == 1
        graph.remove_transaction("T2")
        assert graph._group_index == {}
