"""The fd-transaction graph G^fd_T (Figure 3, left)."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.fd_graph import FdTransactionGraph
from repro.core.workspace import Workspace
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


@pytest.fixture
def figure2_graph(figure2):
    return FdTransactionGraph(Workspace(figure2))


class TestFigure3:
    def test_t1_t5_conflict(self, figure2_graph):
        # Figure 3: T1 and T5 spend the same TxIn key (double spend).
        assert not figure2_graph.has_edge("T1", "T5")
        assert figure2_graph.conflicts["T1"] == {"T5"}
        assert figure2_graph.conflicts["T5"] == {"T1"}

    def test_all_other_pairs_are_edges(self, figure2_graph):
        ids = ["T1", "T2", "T3", "T4", "T5"]
        for i, u in enumerate(ids):
            for v in ids[i + 1 :]:
                expected = {u, v} != {"T1", "T5"}
                assert figure2_graph.has_edge(u, v) is expected

    def test_maximal_cliques_match_example6(self, figure2_graph):
        cliques = set(figure2_graph.maximal_cliques())
        assert cliques == {
            frozenset({"T2", "T3", "T4", "T5"}),
            frozenset({"T1", "T2", "T3", "T4"}),
        }

    def test_verify_against_pairwise_definition(self, figure2_graph):
        figure2_graph.verify_against()


class TestPruning:
    def _db(self, pending):
        schema = make_schema({"R": ["a", "b"]})
        constraints = ConstraintSet(schema, [Key("R", ["a"], schema)])
        current = Database.from_dict(schema, {"R": [(1, "committed")]})
        return BlockchainDatabase(current, constraints, pending)

    def test_base_clash_pruned(self):
        db = self._db([Transaction({"R": [(1, "different")]}, tx_id="T1")])
        graph = FdTransactionGraph(Workspace(db))
        assert graph.nodes == set()
        assert graph.never_appendable == {"T1"}

    def test_internally_inconsistent_pruned(self):
        db = self._db([Transaction({"R": [(5, "x"), (5, "y")]}, tx_id="T1")])
        graph = FdTransactionGraph(Workspace(db))
        assert graph.never_appendable == {"T1"}

    def test_same_tuple_as_base_not_pruned(self):
        db = self._db([Transaction({"R": [(1, "committed")]}, tx_id="T1")])
        graph = FdTransactionGraph(Workspace(db))
        assert graph.nodes == {"T1"}


class TestMaintenance:
    def _graph(self):
        schema = make_schema({"R": ["a", "b"]})
        constraints = ConstraintSet(schema, [Key("R", ["a"], schema)])
        db = BlockchainDatabase(
            Database.from_dict(schema, {"R": []}),
            constraints,
            [
                Transaction({"R": [(1, "x")]}, tx_id="T1"),
                Transaction({"R": [(1, "y")]}, tx_id="T2"),
            ],
        )
        ws = Workspace(db)
        return ws, FdTransactionGraph(ws)

    def test_add_transaction(self):
        ws, graph = self._graph()
        ws.issue(Transaction({"R": [(1, "x")]}, tx_id="T3"))
        graph.add_transaction("T3")
        # T3 agrees with T1 (same tuple) but clashes with T2.
        assert graph.has_edge("T1", "T3")
        assert not graph.has_edge("T2", "T3")

    def test_remove_transaction(self):
        ws, graph = self._graph()
        graph.remove_transaction("T2")
        assert graph.nodes == {"T1"}
        assert graph.conflicts["T1"] == set()

    def test_commit_invalidates_conflicting(self):
        ws, graph = self._graph()
        ws.commit("T1")  # (1, 'x') now committed
        graph.remove_transaction("T1")
        graph.refresh_after_commit()
        assert "T2" in graph.never_appendable
        assert graph.nodes == set()

    def test_conflicted_and_free(self):
        _, graph = self._graph()
        assert graph.conflicted_nodes() == {"T1", "T2"}
        assert graph.free_nodes() == set()
        assert graph.conflict_count() == 1


class TestRestrictedCliques:
    def test_restrict(self, figure2_graph):
        cliques = set(figure2_graph.maximal_cliques(restrict={"T1", "T5", "T3"}))
        assert cliques == {frozenset({"T1", "T3"}), frozenset({"T5", "T3"})}

    def test_restrict_to_free_only(self, figure2_graph):
        cliques = list(figure2_graph.maximal_cliques(restrict={"T2", "T3"}))
        assert cliques == [frozenset({"T2", "T3"})]

    def test_restrict_empty(self, figure2_graph):
        cliques = list(figure2_graph.maximal_cliques(restrict=set()))
        assert cliques == [frozenset()]

    def test_is_clique(self, figure2_graph):
        assert figure2_graph.is_clique({"T1", "T2", "T3"})
        assert not figure2_graph.is_clique({"T1", "T5"})
        assert not figure2_graph.is_clique({"T1", "unknown"})
        assert figure2_graph.is_clique(set())
