"""Ind-q-graph structure under the real workload query families.

The component decomposition is OptDCSat's whole advantage; these tests
pin how the paper's query shapes interact with it on Bitcoin-style data.
"""

import pytest

from repro.bitcoin.generator import DatasetSpec, generate_dataset
from repro.core.checker import DCSatChecker
from repro.workloads.constants import ConstantPicker, fresh_address
from repro.workloads.queries import path_constraint, simple_constraint, star_constraint

SPEC = DatasetSpec(
    name="indg",
    committed_blocks=18,
    pending_blocks=8,
    txs_per_block=6,
    users=12,
    contradictions=4,
    seed=31,
)


@pytest.fixture(scope="module")
def checker():
    return DCSatChecker(generate_dataset(SPEC).to_blockchain_database())


@pytest.fixture(scope="module")
def picker():
    return ConstantPicker(generate_dataset(SPEC))


class TestComponentStructure:
    def test_theta_i_components_partition_pending(self, checker):
        components = checker.ind_graph.components()
        covered = [tx for component in components for tx in component]
        assert sorted(covered) == sorted(checker.db.pending_ids)
        assert len(set(covered)) == len(covered)

    def test_dependent_transactions_share_component(self, checker):
        """A pending tx spending another pending tx's output must share
        its component (the Θ_I edge from the inclusion dependency)."""
        components = checker.ind_graph.components()
        by_tx = {tx: c for c in components for tx in c}
        workspace = checker.workspace
        for tx_id in checker.db.pending_ids:
            tx = checker.db.transaction(tx_id)
            for prev_tx_id, *_ in tx.tuples("TxIn"):
                if prev_tx_id in by_tx:  # parent is pending too
                    assert by_tx[prev_tx_id] is by_tx[tx_id], (
                        tx_id, prev_tx_id,
                    )

    def test_simple_query_preserves_components(self, checker):
        base = {frozenset(c) for c in checker.ind_graph.components()}
        query = simple_constraint(fresh_address("ind-1"))
        augmented = {
            frozenset(c) for c in checker.ind_graph.components(query)
        }
        assert augmented == base  # single atom: no Θ_q pairs

    def test_path_query_merges_fewer_than_star(self, checker, picker):
        """The star's shared constant joins every arm's component; the
        path's chained variables merge only along the chain."""
        source, sink = picker.path_endpoints(2)
        path = path_constraint(2, source, sink)
        star = star_constraint(2, picker.star_source(2))
        base_count = len(checker.ind_graph.components())
        path_count = len(checker.ind_graph.components(path))
        star_count = len(checker.ind_graph.components(star))
        assert path_count <= base_count
        assert star_count <= base_count

    def test_opt_explores_fewer_txs_than_naive(self, checker, picker):
        query = simple_constraint(picker.pending_recipient())
        naive = checker.check(query, algorithm="naive")
        opt = checker.check(query, algorithm="opt")
        assert not naive.satisfied and not opt.satisfied
        assert len(opt.witness) <= len(naive.witness)


class TestChainingKnob:
    def test_chaining_rate_controls_components(self):
        """More spending of unconfirmed outputs ⇒ fewer, larger
        ind-components — the generator knob documented in SUBSTRATE.md."""
        sparse_spec = SPEC.scaled(name="indg-sparse", chain_on_pending_rate=0.0)
        dense_spec = SPEC.scaled(name="indg-dense", chain_on_pending_rate=0.9)
        sparse = DCSatChecker(
            generate_dataset(sparse_spec).to_blockchain_database()
        )
        dense = DCSatChecker(
            generate_dataset(dense_spec).to_blockchain_database()
        )

        def normalized_component_count(checker):
            components = checker.ind_graph.components()
            return len(components) / max(1, len(checker.db.pending_ids))

        assert normalized_component_count(sparse) > normalized_component_count(
            dense
        )

    def test_zero_chaining_gives_singletons(self):
        spec = SPEC.scaled(name="indg-zero", chain_on_pending_rate=0.0,
                           contradictions=0)
        checker = DCSatChecker(generate_dataset(spec).to_blockchain_database())
        components = checker.ind_graph.components()
        # Without pending-on-pending spends or conflicts, no Θ_I edge can
        # exist between pending txs: all components are singletons.
        assert all(len(c) == 1 for c in components)
