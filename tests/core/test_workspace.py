"""The overlay workspace: world cursor, dedup, steady-state maintenance."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.workspace import Workspace
from repro.errors import ReproError
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


@pytest.fixture
def ws() -> Workspace:
    schema = make_schema({"R": ["a", "b"]})
    constraints = ConstraintSet(schema, [Key("R", ["a"], schema)])
    current = Database.from_dict(schema, {"R": [(1, "base")]})
    db = BlockchainDatabase(
        current,
        constraints,
        [
            Transaction({"R": [(2, "t1")]}, tx_id="T1"),
            Transaction({"R": [(3, "t2"), (1, "base")]}, tx_id="T2"),
            Transaction({"R": [(2, "t3")]}, tx_id="T3"),
        ],
    )
    return Workspace(db)


class TestWorldCursor:
    def test_inactive_pending_invisible(self, ws):
        assert set(ws.iter_tuples("R")) == {(1, "base")}
        assert not ws.has_fact("R", (2, "t1"))

    def test_activation(self, ws):
        ws.set_active({"T1"})
        assert set(ws.iter_tuples("R")) == {(1, "base"), (2, "t1")}
        assert ws.has_fact("R", (2, "t1"))
        assert not ws.has_fact("R", (3, "t2"))

    def test_unknown_active_id_rejected(self, ws):
        with pytest.raises(ReproError):
            ws.set_active({"nope"})

    def test_base_duplicate_deduplicated(self, ws):
        # T2 re-inserts the base fact (1, 'base'): must not double-count.
        ws.set_active({"T2"})
        tuples = list(ws.iter_tuples("R"))
        assert tuples.count((1, "base")) == 1
        assert set(tuples) == {(1, "base"), (3, "t2")}

    def test_lookup_respects_active_set(self, ws):
        assert set(ws.lookup("R", (0,), (2,))) == set()
        ws.set_active({"T1"})
        assert set(ws.lookup("R", (0,), (2,))) == {(2, "t1")}
        ws.set_active({"T1", "T3"})
        assert set(ws.lookup("R", (0,), (2,))) == {(2, "t1"), (2, "t3")}

    def test_has_projection(self, ws):
        assert ws.has_projection("R", (0,), (1,))
        assert not ws.has_projection("R", (0,), (3,))
        ws.set_active({"T2"})
        assert ws.has_projection("R", (0,), (3,))

    def test_activate_and_clear(self, ws):
        ws.activate("T1")
        ws.activate("T3")
        assert ws.active == {"T1", "T3"}
        ws.clear_active()
        assert ws.active == frozenset()
        ws.activate_all()
        assert ws.active == {"T1", "T2", "T3"}


class TestProviders:
    def test_providers_of(self, ws):
        assert ws.providers_of("R", (2, "t1")) == {"T1"}
        assert ws.providers_of("R", (1, "base")) == {"T2"}
        assert ws.providers_of("R", (9, "zz")) == frozenset()

    def test_pending_projections(self, ws):
        projections = ws.pending_projections("R", (0,))
        assert projections[(2,)] == {"T1", "T3"}
        assert projections[(3,)] == {"T2"}

    def test_projection_cache_updated_on_issue(self, ws):
        ws.pending_projections("R", (0,))  # build cache
        ws.issue(Transaction({"R": [(2, "t4")]}, tx_id="T4"))
        assert ws.pending_projections("R", (0,))[(2,)] == {"T1", "T3", "T4"}

    def test_lookup_cache_updated_on_issue(self, ws):
        ws.set_active(set())
        list(ws.lookup("R", (0,), (2,)))  # build cache
        ws.issue(Transaction({"R": [(2, "t4")]}, tx_id="T4"))
        ws.set_active({"T4"})
        assert set(ws.lookup("R", (0,), (2,))) == {(2, "t4")}


class TestSteadyState:
    def test_commit_moves_facts_to_base(self, ws):
        ws.commit("T1")
        assert (2, "t1") in ws.base["R"]
        assert ws.providers_of("R", (2, "t1")) == frozenset()
        assert "T1" not in ws.db.pending_ids
        # Committed facts visible with empty active set.
        assert ws.has_fact("R", (2, "t1"))

    def test_commit_clears_active_membership(self, ws):
        ws.set_active({"T1"})
        ws.commit("T1")
        assert ws.active == frozenset()

    def test_forget_drops_without_committing(self, ws):
        ws.forget("T1")
        assert (2, "t1") not in ws.base["R"]
        assert "T1" not in ws.db.pending_ids

    def test_post_commit_dedup(self, ws):
        # T1 commits (2, 't1'); T3's (2, 't3') conflicts on the key but
        # remains pending: its tuple is distinct and still overlayable.
        ws.commit("T1")
        ws.set_active({"T3"})
        assert set(ws.lookup("R", (0,), (2,))) == {(2, "t1"), (2, "t3")}

    def test_counts(self, ws):
        assert ws.count_tuples("R") >= 4  # base + pending upper bound
        assert ws.pending_tuple_count() == 4
