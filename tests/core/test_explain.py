"""Verdict explanations: assignments, facts, provenance."""

import pytest

from repro.core.checker import DCSatChecker
from repro.core.explain import explain_violation
from repro.errors import ReproError
from repro.query.parser import parse_query


@pytest.fixture
def checker(figure2):
    return DCSatChecker(figure2, assume_nonnegative_sums=True)


class TestConjunctive:
    def test_explains_simple_violation(self, figure2, checker):
        query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
        result = checker.check(query, algorithm="opt")
        explanation = explain_violation(figure2, query, result)
        assert explanation.assignment["t"] == 7
        assert explanation.assignment["a"] == 1.0
        assert len(explanation.facts) == 1
        fact = explanation.facts[0]
        assert fact.relation == "TxOut"
        assert fact.source == "T4"
        assert explanation.culprit_transactions == {"T4"}

    def test_committed_provenance(self, figure2, checker):
        query = parse_query("q() <- TxOut(t, s, 'U3Pk', a)")
        result = checker.check(query)
        explanation = explain_violation(figure2, query, result)
        assert explanation.witness == frozenset()
        assert explanation.facts[0].source == "committed"

    def test_join_provenance_spans_transactions(self, figure2, checker):
        query = parse_query(
            "q() <- TxOut(t, s, 'U8Pk', a), TxOut(t2, s2, 'U5Pk', a2)"
        )
        result = checker.check(query, algorithm="naive")
        explanation = explain_violation(figure2, query, result)
        assert explanation.culprit_transactions == {"T1", "T4"}

    def test_render_is_readable(self, figure2, checker):
        query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
        result = checker.check(query)
        text = explain_violation(figure2, query, result).render()
        assert "witness world" in text
        assert "T4" in text
        assert "TxOut" in text


class TestAggregate:
    def test_aggregate_value_reported(self, figure2, checker):
        query = parse_query("[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 4")
        result = checker.check(query, algorithm="naive")
        explanation = explain_violation(figure2, query, result)
        assert explanation.aggregate_value == 4.0
        assert "T5" in explanation.culprit_transactions
        assert "sum" in explanation.note


class TestErrors:
    def test_satisfied_result_rejected(self, figure2, checker):
        query = parse_query("q() <- TxOut(t, s, 'NobodyPk', a)")
        result = checker.check(query)
        with pytest.raises(ReproError):
            explain_violation(figure2, query, result)

    def test_missing_witness_rejected(self, figure2):
        from repro.core.results import DCSatResult

        query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
        with pytest.raises(ReproError):
            explain_violation(
                figure2, query, DCSatResult(satisfied=False, witness=None)
            )

    def test_inconsistent_witness_detected(self, figure2):
        from repro.core.results import DCSatResult

        query = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
        bogus = DCSatResult(satisfied=False, witness=frozenset({"T3"}))
        with pytest.raises(ReproError):
            explain_violation(figure2, query, bogus)
