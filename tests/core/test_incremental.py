"""The verdict ledger: component-scoped sub-verdicts across churn.

Unit tests for :class:`~repro.core.incremental.VerdictLedger` (keying,
pruning, blanket dirtying, epoch resets, LRU eviction) plus the monitor
behaviors the tentpole promises: component reuse after unrelated churn,
witness revalidation under ``witness_mode="revalidate"``, and the
subsumption-staleness regression.
"""

from __future__ import annotations

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.incremental import (
    VerdictLedger,
    component_footprint,
    component_still_satisfied,
    revalidate_witness,
)
from repro.core.monitor import ConstraintMonitor
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction

QS_U8 = "q() <- TxOut(t, s, 'U8Pk', a)"


def store(ledger, name, candidates, witness=None, epoch=0):
    return ledger.store(
        name, candidates, frozenset({"R"}), witness, epoch
    )


class TestLedgerKeys:
    def test_clean_key_hit_is_reuse(self):
        ledger = VerdictLedger()
        store(ledger, "c", {"T1", "T2"}, witness=frozenset({"T1"}))
        plan = ledger.plan("c", 0, [{"T1", "T2"}, {"T3"}])
        assert plan[0][0] == "reuse"
        assert plan[0][1].witness == frozenset({"T1"})
        assert plan[1] == ("sweep", None)

    def test_issue_never_touches_entries(self):
        ledger = VerdictLedger()
        store(ledger, "c", {"T1"})
        affected = ledger.note_change("issue", "T9", ["c"], epoch=1)
        assert affected == {}
        assert ledger.entry_count == 1

    @pytest.mark.parametrize("kind", ["forget", "commit"])
    def test_departed_tx_prunes_containing_keys(self, kind):
        ledger = VerdictLedger()
        store(ledger, "c", {"T1", "T2"})
        store(ledger, "c", {"T3"})
        store(ledger, "d", {"T1"})
        affected = ledger.note_change(kind, "T1", [], epoch=1)
        # Entries containing T1 can never match a future survivor set.
        assert affected == {"c": 1, "d": 1}
        assert ledger.counters["pruned"] == 2
        plan = ledger.plan("c", 1, [{"T3"}])
        assert plan[0][0] == "reuse"

    @pytest.mark.parametrize("kind", ["commit", "absorb"])
    def test_base_growth_blankets_invalidated_constraints(self, kind):
        ledger = VerdictLedger()  # strict: dirty entries are dropped
        store(ledger, "c", {"T1"})
        store(ledger, "c", {"T2"})
        store(ledger, "d", {"T3"})
        tx_id = "T9" if kind == "commit" else None
        affected = ledger.note_change(kind, tx_id, ["c"], epoch=1)
        assert affected == {"c": 2}
        assert ledger.counters["dirtied"] == 2
        # Non-invalidated constraints keep their entries exactly.
        assert ledger.plan("d", 1, [{"T3"}])[0][0] == "reuse"
        assert ledger.plan("c", 1, [{"T1"}])[0][0] == "sweep"

    def test_revalidate_mode_marks_instead_of_dropping(self):
        ledger = VerdictLedger(witness_mode="revalidate")
        store(ledger, "c", {"T1"}, witness=frozenset({"T1"}))
        ledger.note_change("absorb", None, ["c"], epoch=1)
        plan = ledger.plan("c", 1, [{"T1"}])
        assert plan[0][0] == "revalidate"
        assert plan[0][1].witness == frozenset({"T1"})

    def test_bad_witness_mode_rejected(self):
        with pytest.raises(ValueError):
            VerdictLedger(witness_mode="sloppy")


class TestLedgerLifecycle:
    def test_epoch_divergence_clears_everything(self):
        # A state change that bypassed the monitor (direct checker
        # mutation) makes every stored sub-verdict untrustworthy.
        ledger = VerdictLedger()
        store(ledger, "c", {"T1"}, epoch=3)
        ledger.note_change("issue", "T1", [], epoch=3)
        plan = ledger.plan("c", 7, [{"T1"}])
        assert plan[0] == ("sweep", None)
        assert ledger.entry_count == 0
        assert ledger.counters["epoch_resets"] == 1

    def test_lru_eviction_bounds_the_ledger(self):
        ledger = VerdictLedger(max_entries=2)
        store(ledger, "c", {"T1"})
        store(ledger, "c", {"T2"})
        # Touch T1 so T2 becomes the least recently used entry.
        entry = ledger.plan("c", 0, [{"T1"}])[0][1]
        ledger.touch("c", entry)
        store(ledger, "c", {"T3"})
        assert ledger.counters["evicted"] == 1
        kinds = [d for d, _ in ledger.plan("c", 0, [{"T1"}, {"T2"}, {"T3"}])]
        assert kinds == ["reuse", "sweep", "reuse"]

    def test_drop_forgets_a_constraint(self):
        ledger = VerdictLedger()
        store(ledger, "c", {"T1"})
        ledger.drop("c")
        assert ledger.entry_count == 0

    def test_snapshot_and_merge(self):
        a, b = VerdictLedger(), VerdictLedger()
        store(a, "c", {"T1"})
        store(b, "d", {"T2"})
        b.counters["reused"] = 3
        merged = a.merge_snapshot(b.snapshot(), a.snapshot())
        assert merged["constraints"] == 2
        assert merged["entries"] == 2
        assert merged["counters"]["reused"] == 3


class TestRevalidationHelpers:
    def test_witness_revalidation_round_trip(self, figure2):
        checker = DCSatChecker(figure2)
        query = parse_query(QS_U8)
        witness = frozenset({"T1", "T2", "T3", "T4"})
        assert revalidate_witness(
            checker.workspace, checker.engine, query, witness
        )
        # A world missing T4's inputs is not a possible world anymore.
        assert not revalidate_witness(
            checker.workspace, checker.engine, query, frozenset({"T4"})
        )
        checker.workspace.clear_active()

    def test_departed_witness_member_fails_fast(self, figure2):
        checker = DCSatChecker(figure2)
        checker.forget("T4")
        assert not revalidate_witness(
            checker.workspace,
            checker.engine,
            parse_query(QS_U8),
            frozenset({"T1", "T2", "T3", "T4"}),
        )

    def test_component_short_circuit(self, figure2):
        checker = DCSatChecker(figure2)
        query = parse_query("q() <- TxOut(t, s, 'NobodyPk', a)")
        assert component_still_satisfied(
            checker.engine, query, {"T1", "T2", "T3", "T4", "T5"}
        )
        assert not component_still_satisfied(
            checker.engine, parse_query(QS_U8), {"T1", "T2", "T3", "T4", "T5"}
        )
        checker.workspace.clear_active()

    def test_component_footprint(self, figure2):
        assert component_footprint(figure2, {"T1"}) == frozenset(
            {"TxIn", "TxOut"}
        )


class TestMonitorIncremental:
    def test_ledger_path_reports_its_algorithm(self, figure2):
        monitor = ConstraintMonitor(DCSatChecker(figure2))
        monitor.register("u8", QS_U8)
        result = monitor.status("u8")
        assert result.stats.algorithm == "opt-ledger"
        assert not result.satisfied

    def test_unrelated_issue_reuses_components(self, figure2):
        monitor = ConstraintMonitor(DCSatChecker(figure2))
        monitor.register("u8", QS_U8)
        first = monitor.status("u8")
        # A self-contained output nobody consumes: its singleton
        # component has no U8Pk facts, so coverage prunes it and the
        # survivor set (hence every ledger key) is unchanged.
        monitor.issue(
            Transaction({"TxOut": [(100, 1, "QPk", 1.0)]}, tx_id="T-Q")
        )
        second = monitor.status("u8")
        assert second.stats.components_reused >= 1
        assert second.satisfied == first.satisfied
        assert second.witness == first.witness
        assert monitor.ledger.counters["reused"] >= 1

    def test_dirty_component_counts_flow_into_stats(self, figure2):
        monitor = ConstraintMonitor(DCSatChecker(figure2))
        monitor.register("u8", QS_U8)
        monitor.status("u8")
        monitor.commit("T5")
        assert monitor.last_dirty_components.get("u8", 0) >= 1
        fresh = monitor.status("u8")
        assert fresh.stats.dirty_components >= 1
        assert fresh.satisfied  # T5 kills T1 -> T2 -> T4

    def test_incremental_matches_plain_checker(self, figure2):
        incremental = ConstraintMonitor(DCSatChecker(figure2))
        plain = ConstraintMonitor(
            DCSatChecker(figure2), incremental=False
        )
        for monitor in (incremental, plain):
            monitor.register("u8", QS_U8)
        a, b = incremental.status("u8"), plain.status("u8")
        assert a.satisfied == b.satisfied
        assert a.witness == b.witness

    def test_non_opt_algorithms_bypass_the_ledger(self, figure2):
        monitor = ConstraintMonitor(DCSatChecker(figure2))
        monitor.register("u8", QS_U8, algorithm="naive")
        result = monitor.status("u8")
        assert result.stats.algorithm == "naive"
        assert monitor.ledger.entry_count == 0

    def test_unregister_drops_ledger_state(self, figure2):
        monitor = ConstraintMonitor(DCSatChecker(figure2))
        monitor.register("u8", QS_U8)
        monitor.status("u8")
        assert monitor.ledger.entry_count >= 1
        monitor.unregister("u8")
        assert monitor.ledger.entry_count == 0

    def test_direct_checker_mutation_resets_the_ledger(self, figure2):
        # dry_run bumps the checker epoch without telling the monitor;
        # the next solve must distrust (and rebuild) the ledger.
        checker = DCSatChecker(figure2)
        monitor = ConstraintMonitor(checker)
        monitor.register("u8", QS_U8)
        assert not monitor.status("u8").satisfied
        checker.dry_run(
            Transaction({"TxOut": [(100, 1, "QPk", 1.0)]}, tx_id="T-DRY"),
            QS_U8,
        )
        monitor.entry("u8").result = None
        assert not monitor.status("u8").satisfied
        assert monitor.ledger.counters["epoch_resets"] >= 1


def ind_db() -> BlockchainDatabase:
    """P/C linked by an inclusion; C(3, ...) is never appendable."""
    schema = make_schema({"P": ["k"], "C": ["k", "v"]})
    constraints = ConstraintSet(
        schema, [InclusionDependency("C", ["k"], "P", ["k"])]
    )
    current = Database.from_dict(schema, {"P": [(1,)], "C": []})
    pending = [
        Transaction({"C": [(1, "a")]}, tx_id="V1"),
        Transaction({"P": [(2,)]}, tx_id="V2"),
        Transaction({"C": [(2, "b")]}, tx_id="V3"),
        Transaction({"C": [(3, "c")]}, tx_id="V4"),
    ]
    return BlockchainDatabase(current, constraints, pending)


class TestRevalidateMode:
    def test_witness_revalidation_keeps_the_verdict(self, figure2):
        monitor = ConstraintMonitor(
            DCSatChecker(figure2), witness_mode="revalidate"
        )
        monitor.register("u8", QS_U8)
        first = monitor.status("u8")
        assert not first.satisfied
        # Absorbing an unrelated committed fact dirties (not drops) the
        # entries; the stored witness survives one cheap probe.
        monitor.absorb(
            Transaction({"TxOut": [(100, 1, "QPk", 1.0)]}, tx_id="T-ABS")
        )
        second = monitor.status("u8")
        assert not second.satisfied
        assert second.stats.witness_revalidations >= 1
        assert monitor.ledger.counters["revalidation_hits"] >= 1
        assert second.witness == first.witness

    def test_satisfied_component_probe(self):
        monitor = ConstraintMonitor(
            DCSatChecker(ind_db()), witness_mode="revalidate"
        )
        monitor.register("orphan", "q() <- C(3, v)")
        assert monitor.status("orphan").satisfied
        monitor.absorb(Transaction({"P": [(9,)]}, tx_id="V-ABS"))
        again = monitor.status("orphan")
        assert again.satisfied
        assert again.stats.witness_revalidations >= 1

    def test_failed_probe_falls_back_to_the_sweep(self):
        monitor = ConstraintMonitor(
            DCSatChecker(ind_db()), witness_mode="revalidate"
        )
        monitor.register("orphan", "q() <- C(3, v)")
        assert monitor.status("orphan").satisfied
        # P(3) arrives committed: V4 becomes appendable and the verdict
        # flips; the component-scope short-circuit probe must fail and
        # the re-sweep must find the violation.
        monitor.absorb(Transaction({"P": [(3,)]}, tx_id="V-P3"))
        flipped = monitor.status("orphan")
        assert not flipped.satisfied
        assert flipped.witness is not None
        assert "V4" in flipped.witness


class TestSubsumptionStaleness:
    def test_ledger_assembled_verdict_still_subsumes(self):
        monitor = ConstraintMonitor(DCSatChecker(ind_db()))
        monitor.register("broad", "q() <- C(3, v)")
        assert monitor.status("broad").stats.algorithm == "opt-ledger"
        # Reassemble broad's verdict from reused ledger components...
        monitor.issue(Transaction({"P": [(9,)]}, tx_id="V9"))
        assert monitor.status("broad").satisfied
        # ...and it must still answer the narrow constraint for free.
        monitor.register("narrow", "q() <- C(3, 'c')")
        narrow = monitor.status("narrow")
        assert narrow.satisfied
        assert narrow.stats.algorithm == "subsumed-by:broad"

    def test_subsumed_verdict_does_not_survive_dirtying(self):
        """Regression: a verdict answered via subsumption must recompute
        once the subsuming constraint's components are dirtied."""
        monitor = ConstraintMonitor(DCSatChecker(ind_db()))
        monitor.register("broad", "q() <- C(3, v)")
        monitor.register("narrow", "q() <- C(3, 'c')")
        assert monitor.status("broad").satisfied
        assert monitor.status("narrow").stats.algorithm == "subsumed-by:broad"
        # P(3) commits: V4 becomes appendable, flipping broad — and with
        # it the narrow verdict that was never independently checked.
        monitor.absorb(Transaction({"P": [(3,)]}, tx_id="V-P3"))
        narrow = monitor.status("narrow")
        assert not narrow.satisfied
        assert not monitor.status("broad").satisfied
        assert not narrow.stats.algorithm.startswith("subsumed-by:")
