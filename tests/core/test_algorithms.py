"""NaiveDCSat, OptDCSat, AssignDCSat, brute force: agreement and behaviour.

The solvers are exercised through :class:`DCSatChecker` so the same
world-evaluation plumbing the real system uses is under test.
"""

import pytest

from repro.core.checker import DCSatChecker
from repro.errors import AlgorithmError
from repro.query.parser import parse_query

QS_U8 = "q() <- TxOut(t, s, 'U8Pk', a)"
QS_NONE = "q() <- TxOut(t, s, 'NobodyPk', a)"
# U7Pk receives from both T4 (2.5) and T5 (4.0) — in different worlds.
QS_U7 = "q() <- TxOut(t, s, 'U7Pk', a)"


@pytest.fixture
def checker(figure2):
    return DCSatChecker(figure2, assume_nonnegative_sums=True)


class TestAgreementOnFigure2:
    @pytest.mark.parametrize("algorithm", ["naive", "opt", "assign", "brute"])
    def test_unsatisfied_qs(self, checker, algorithm):
        result = checker.check(QS_U8, algorithm=algorithm)
        assert not result.satisfied
        assert result.witness is not None

    @pytest.mark.parametrize("algorithm", ["naive", "opt", "assign", "brute"])
    def test_satisfied_qs(self, checker, algorithm):
        result = checker.check(QS_NONE, algorithm=algorithm, short_circuit=False)
        assert result.satisfied
        assert result.witness is None

    def test_example6_naive_visits_both_cliques_worst_case(self, checker):
        # The denial constraint from Example 6 is violated only in the
        # maximal world of the {T1,T2,T3,T4} clique.
        result = checker.check(QS_U8, algorithm="naive", short_circuit=False)
        assert not result.satisfied
        assert result.stats.cliques_enumerated <= 2
        assert "T4" in result.witness

    def test_witness_is_a_possible_world(self, checker, figure2):
        from repro.core.possible_worlds import is_possible_world, world_database

        result = checker.check(QS_U8, algorithm="naive")
        assert is_possible_world(
            figure2, world_database(figure2, result.witness)
        )


class TestMonotonicityGuards:
    def test_naive_rejects_non_monotone(self, checker):
        # Negated atom, and q(R) is false (U8Pk is not in the state), so
        # the guard — not the state check — must fire.
        q = parse_query(
            "q() <- TxOut(t, s, 'U8Pk', a), not TxIn(t, s, 'U8Pk', a, t, 'x')"
        )
        with pytest.raises(AlgorithmError):
            checker.check(q, algorithm="naive")

    def test_opt_rejects_non_monotone(self, checker):
        q = parse_query("[q(count()) <- TxOut(t, s, pk, a)] = 100")
        with pytest.raises(AlgorithmError):
            checker.check(q, algorithm="opt")

    def test_opt_rejects_disconnected(self, checker):
        q = parse_query(
            "q() <- TxOut(t, s, 'U8Pk', a), TxOut(t2, s2, 'NobodyPk', a2), a < a2"
        )
        with pytest.raises(AlgorithmError):
            checker.check(q, algorithm="opt", short_circuit=False)

    def test_assign_rejects_aggregates(self, checker):
        q = parse_query("[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 1")
        with pytest.raises(AlgorithmError):
            checker.check(q, algorithm="assign")


class TestAggregatesViaNaive:
    def test_sum_unreachable_due_to_conflict(self, checker):
        # U7Pk could get 2.5 (T4) + 4.0 (T5) = 6.5 only if T4 and T5
        # coexisted — they cannot (T4 needs T2 needs T1; T5 kills T1).
        q = parse_query("[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 6")
        assert checker.check(q, algorithm="naive").satisfied

    def test_sum_reachable(self, checker):
        q = parse_query("[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 4")
        result = checker.check(q, algorithm="naive")
        assert not result.satisfied
        assert "T5" in result.witness

    def test_count_distinct(self, checker):
        # U4Pk receives in R (3,2), from T2 (5,1) and T3 (6,1):
        # all three coexist in the {T1,T2,T3,T4} clique.
        q = parse_query("[q(cntd(t, s)) <- TxOut(t, s, 'U4Pk', a)] >= 3")
        assert not checker.check(q, algorithm="naive").satisfied
        q4 = parse_query("[q(cntd(t, s)) <- TxOut(t, s, 'U4Pk', a)] >= 4")
        assert checker.check(q4, algorithm="naive").satisfied

    def test_max(self, checker):
        q = parse_query("[q(max(a)) <- TxOut(t, s, 'U7Pk', a)] > 3")
        assert not checker.check(q, algorithm="naive").satisfied
        q2 = parse_query("[q(max(a)) <- TxOut(t, s, 'U7Pk', a)] > 4")
        assert checker.check(q2, algorithm="naive").satisfied


class TestShortCircuit:
    def test_satisfied_uses_short_circuit(self, checker):
        result = checker.check(QS_NONE)
        assert result.satisfied
        assert result.stats.short_circuit_used
        assert result.stats.algorithm == "short-circuit"
        assert result.stats.worlds_checked == 0

    def test_unsatisfied_does_not_conclude_from_overlay(self, checker):
        # q true over R ∪ T does NOT mean a world violates it: U7Pk's
        # sum reaches 6.5 only in the (inconsistent) full overlay.
        q = parse_query("[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 6")
        result = checker.check(q, algorithm="naive", short_circuit=True)
        assert result.satisfied
        assert result.stats.short_circuit_used
        assert result.stats.short_circuit_result is False
        assert result.stats.worlds_checked > 0

    def test_state_check_catches_current_violation(self, checker):
        q = parse_query("q() <- TxOut(t, s, 'U3Pk', a)")  # in R already
        result = checker.check(q)
        assert not result.satisfied
        assert result.witness == frozenset()
        assert result.stats.algorithm == "state-check"


class TestBrute:
    def test_brute_respects_pending_limit(self, checker):
        with pytest.raises(AlgorithmError):
            checker.check(QS_U8, algorithm="brute", pending_limit=2)

    def test_brute_counts_worlds(self, checker):
        result = checker.check(
            QS_NONE, algorithm="brute", short_circuit=False
        )
        assert result.satisfied
        assert result.stats.worlds_checked == 9  # Example 3's nine worlds


class TestAutoSelection:
    def test_auto_picks_opt_for_connected(self, checker):
        result = checker.check(QS_U8, algorithm="auto", short_circuit=False)
        assert result.stats.algorithm == "opt"

    def test_auto_picks_naive_for_disconnected_monotone(self, checker):
        q = parse_query("[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 4")
        result = checker.check(q, algorithm="auto", short_circuit=False)
        assert result.stats.algorithm == "naive"

    def test_auto_falls_back_to_brute_for_non_monotone_mixed(self, checker):
        q = parse_query(
            "q() <- TxOut(t, s, 'U8Pk', a), not TxIn(t, s, 'U8Pk', a, t, 'x')"
        )
        result = checker.check(q, algorithm="auto")
        assert result.stats.algorithm == "brute"
