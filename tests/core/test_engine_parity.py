"""Evaluation-engine parity: sync, batched and async are one solver.

The engine layer's contract (see :mod:`repro.core.engine`) is that the
*how* of world evaluation never leaks into the *what*: every engine
must return the same verdict, the same witness, and the same work
counters (``worlds_checked`` / ``evaluations`` / ``cliques_enumerated``
— charged only up to and including the first violating world) on the
same evaluation plan.  These tests drive all three engines over both
storage backends on randomized databases, randomized monitor traces
(verdicts *and* invalidation lists), the Proposition-2 divergence
instance, and the aggregate paths, asserting byte-for-byte identical
results everywhere.  ``DCSatStats.engine`` is the one field allowed —
required, even — to differ.
"""

import asyncio
import random
from dataclasses import fields

import pytest

from repro import serialize
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.engine import ENGINES
from repro.core.monitor import ConstraintMonitor
from repro.core.results import DCSatStats
from repro.relational.constraints import ConstraintSet, FunctionalDependency
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction
from tests.core.test_opt_incompleteness import (
    BRIDGE_QUERY,
    bridge_db,  # noqa: F401 (pytest fixture, used by parameter name)
)
from tests.service.conftest import Q_ABSENT, Q_CONFLICT, Q_TWO_A, component_db, r_tx

BACKENDS = ("memory", "sqlite")

#: Everything engines must agree on.  ``engine`` identifies the engine
#: (excluded by design); ``elapsed_seconds`` is wall clock.
PARITY_FIELDS = tuple(
    field.name
    for field in fields(DCSatStats)
    if field.name not in ("engine", "elapsed_seconds")
)

CONJUNCTIVE_QUERIES = (Q_CONFLICT, Q_TWO_A, Q_ABSENT)


def db_copy(db: BlockchainDatabase) -> BlockchainDatabase:
    """An independent database per engine: checkers mutate state."""
    return serialize.database_from_dict(serialize.database_to_dict(db))


def checker_for(
    db: BlockchainDatabase, engine: str, backend: str, **kwargs
) -> DCSatChecker:
    return DCSatChecker(db_copy(db), backend=backend, engine=engine, **kwargs)


def parity_view(result) -> tuple:
    """The cross-engine-comparable projection of a check result."""
    stats = {name: getattr(result.stats, name) for name in PARITY_FIELDS}
    return (result.satisfied, result.witness, stats)


def random_db(rng: random.Random) -> BlockchainDatabase:
    """A small randomized instance: an FD-constrained relation plus an
    unconstrained amounts relation for the aggregate paths."""
    schema = make_schema({"R": ["cid", "k", "v"], "Amt": ["cid", "amount"]})
    constraints = ConstraintSet(
        schema, [FunctionalDependency("R", ["cid", "k"], ["v"])]
    )
    # One committed value per (cid, k) pair: the current state must
    # itself satisfy the FD.
    committed_r = [
        (cid, k, rng.choice("ab"))
        for cid in range(2)
        for k in range(2)
        if rng.random() < 0.4
    ]
    committed_amt = [
        (rng.randrange(2), rng.randrange(1, 4)) for _ in range(rng.randrange(3))
    ]
    current = Database.from_dict(
        schema, {"R": set(committed_r), "Amt": set(committed_amt)}
    )
    pending = []
    for index in range(rng.randrange(4, 8)):
        facts: dict = {
            "R": [
                (rng.randrange(2), rng.randrange(2), rng.choice("abc"))
                for _ in range(rng.randrange(1, 3))
            ]
        }
        if rng.random() < 0.5:
            facts["Amt"] = [(rng.randrange(2), rng.randrange(1, 4))]
        pending.append(Transaction(facts, tx_id=f"P{index}"))
    return BlockchainDatabase(current, constraints, pending)


class TestRandomizedCheckParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_all_engines_agree_on_random_instances(self, backend, seed):
        rng = random.Random(seed)
        db = random_db(rng)
        checkers = {
            engine: checker_for(db, engine, backend, assume_nonnegative_sums=True)
            for engine in ENGINES
        }
        try:
            cases = [
                (query, algorithm)
                for query in CONJUNCTIVE_QUERIES
                for algorithm in ("auto", "naive", "opt", "brute")
            ]
            cases.append((f"[q(sum(a)) <- Amt(c, a)] >= {rng.randrange(3, 9)}", "auto"))
            for query, algorithm in cases:
                views = {
                    engine: parity_view(
                        checker.check(query, algorithm=algorithm)
                    )
                    for engine, checker in checkers.items()
                }
                reference = views["sync"]
                for engine, view in views.items():
                    assert view == reference, (query, algorithm, engine)
        finally:
            for checker in checkers.values():
                checker.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engine_field_identifies_the_engine(self, backend):
        db = component_db(components=2, keys=1)
        for engine in ENGINES:
            checker = checker_for(db, engine, backend)
            try:
                result = checker.check(Q_CONFLICT, algorithm="naive")
                assert result.stats.engine == engine
            finally:
                checker.close()


class TestAsyncSurfaceParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_check_async_matches_check(self, backend):
        db = component_db(components=2, keys=2)
        for engine in ENGINES:
            sync_side = checker_for(db, engine, backend)
            async_side = checker_for(db, engine, backend)
            try:
                for query in CONJUNCTIVE_QUERIES:
                    for algorithm in ("auto", "naive", "opt", "brute"):
                        expected = parity_view(
                            sync_side.check(query, algorithm=algorithm)
                        )
                        actual = parity_view(
                            asyncio.run(
                                async_side.check_async(
                                    query, algorithm=algorithm
                                )
                            )
                        )
                        assert actual == expected, (query, algorithm, engine)
            finally:
                sync_side.close()
                async_side.close()


class TestPropositionTwoDivergenceParity:
    """The documented OptDCSat false negative must be engine-invariant:
    decoupling evaluation cannot change which worlds are *enumerated*."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bridge_instance(self, backend, bridge_db):
        for engine in ENGINES:
            checker = checker_for(bridge_db, engine, backend)
            try:
                opt = checker.check(
                    BRIDGE_QUERY, algorithm="opt", short_circuit=False
                )
                assert opt.satisfied  # the documented divergence
                naive = checker.check(BRIDGE_QUERY, algorithm="naive")
                assert not naive.satisfied
                assert naive.witness == frozenset({"TA", "TC"})
            finally:
                checker.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bridge_stats_identical_across_engines(self, backend, bridge_db):
        views = {}
        for engine in ENGINES:
            checker = checker_for(bridge_db, engine, backend)
            try:
                views[engine] = (
                    parity_view(
                        checker.check(
                            BRIDGE_QUERY, algorithm="opt", short_circuit=False
                        )
                    ),
                    parity_view(checker.check(BRIDGE_QUERY, algorithm="naive")),
                )
            finally:
                checker.close()
        assert views["batched"] == views["sync"]
        assert views["async"] == views["sync"]


class TestRandomizedTraceParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_monitor_traces_agree(self, backend, seed):
        """One random issue/commit/forget trace, three monitors: every
        step must produce identical invalidation lists and identical
        verdicts for every registered constraint."""
        rng = random.Random(100 + seed)
        base = component_db(components=2, keys=2)
        monitors = {
            engine: ConstraintMonitor(checker_for(base, engine, backend))
            for engine in ENGINES
        }
        try:
            for name, query in (
                ("conflict", Q_CONFLICT),
                ("two-a", Q_TWO_A),
                ("absent", Q_ABSENT),
            ):
                for monitor in monitors.values():
                    monitor.register(name, query)

            def assert_monitors_agree(step):
                reference = None
                for engine, monitor in monitors.items():
                    verdicts = {
                        name: parity_view(result)
                        for name, result in monitor.status_all().items()
                    }
                    if reference is None:
                        reference = verdicts
                    else:
                        assert verdicts == reference, (step, engine)

            assert_monitors_agree("initial")
            issued = 0
            for step in range(8):
                action = rng.choice(("issue", "issue", "commit", "forget"))
                pending = sorted(
                    next(iter(monitors.values())).checker.db.pending_ids
                )
                if action == "issue" or not pending:
                    tx = r_tx(
                        f"T{issued}", rng.randrange(2), rng.randrange(2),
                        rng.choice("ab"),
                    )
                    issued += 1
                    invalidated = {
                        engine: sorted(monitor.issue(tx))
                        for engine, monitor in monitors.items()
                    }
                else:
                    tx_id = rng.choice(pending)
                    invalidated = {
                        engine: sorted(getattr(monitor, action)(tx_id))
                        for engine, monitor in monitors.items()
                    }
                reference = invalidated["sync"]
                for engine, names in invalidated.items():
                    assert names == reference, (step, action, engine)
                assert_monitors_agree((step, action))
        finally:
            for monitor in monitors.values():
                monitor.checker.close()


class TestPlannerParity:
    """The bitset planner must be invisible in every observable:
    byte-identical evaluation plans (same worlds, same order) and
    byte-identical check results across engines × backends."""

    @pytest.mark.parametrize("seed", range(4))
    def test_evaluation_plan_streams_are_identical(self, seed):
        from repro.core.naive import maximal_worlds

        db = random_db(random.Random(seed))
        planners = {}
        for planner in ("set", "bitset"):
            checker = DCSatChecker(db_copy(db), planner=planner)
            planners[planner] = list(
                maximal_worlds(checker.workspace, checker.fd_graph)
            )
            checker.close()
        # Exact stream equality — same frozensets, same order.
        assert planners["bitset"] == planners["set"]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_planners_agree_across_engines(self, backend, seed):
        rng = random.Random(seed)
        db = random_db(rng)
        checkers = {
            (engine, planner): checker_for(
                db, engine, backend,
                assume_nonnegative_sums=True, planner=planner,
            )
            for engine in ENGINES
            for planner in ("set", "bitset")
        }
        try:
            for query in CONJUNCTIVE_QUERIES:
                for algorithm in ("naive", "opt", "auto"):
                    views = {
                        key: parity_view(checker.check(query, algorithm=algorithm))
                        for key, checker in checkers.items()
                    }
                    reference = views[("sync", "set")]
                    for key, view in views.items():
                        assert view == reference, (query, algorithm, key)
        finally:
            for checker in checkers.values():
                checker.close()

    def test_checker_exposes_planner_name(self):
        db = component_db(components=1, keys=1)
        for planner, graph_type in (("set", "FdTransactionGraph"),
                                    ("bitset", "BitsetFdGraph")):
            checker = DCSatChecker(db_copy(db), planner=planner)
            try:
                assert checker.planner == planner
                assert type(checker.fd_graph).__name__ == graph_type
            finally:
                checker.close()
