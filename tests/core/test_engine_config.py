"""Engine resolution and hot-loop metric binding."""

import pytest

from repro.core import engine as engine_mod
from repro.core.engine import (
    ENGINES,
    _bound_counter,
    resolve_engine_name,
)
from repro.errors import AlgorithmError


class TestResolveEngineName:
    def test_explicit_names(self):
        for name in ENGINES:
            assert resolve_engine_name(name) == name

    def test_default_is_sync(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine_name(None) == "sync"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        assert resolve_engine_name(None) == "batched"

    def test_typo_fails_at_resolution(self, monkeypatch):
        # The bug: a typo used to survive resolution and explode deep
        # inside as_engine — possibly on a worker process.
        monkeypatch.setenv("REPRO_ENGINE", "bacthed")
        with pytest.raises(AlgorithmError, match="bacthed"):
            resolve_engine_name(None)
        with pytest.raises(AlgorithmError, match="sync"):
            resolve_engine_name("turbo")


class TestCounterCache:
    def test_charging_twice_hits_the_same_counter(self):
        first = _bound_counter("sync")
        assert _bound_counter("sync") is first
        # Distinct engines get distinct label bindings.
        assert _bound_counter("batched") is not first

    def test_cache_tracks_registry_identity(self, monkeypatch):
        from repro.service import metrics as metrics_mod

        before = _bound_counter("sync")
        fresh = metrics_mod.MetricsRegistry()
        monkeypatch.setattr(metrics_mod, "_DEFAULT_REGISTRY", fresh)
        after = _bound_counter("sync")
        assert after is not before  # stale binding must not survive
        assert _bound_counter("sync") is after

    def test_charge_increments_through_the_cache(self):
        counter = _bound_counter("sync")
        base = counter.value
        engine_mod._count_worlds("sync", 3)
        assert counter.value == base + 3
