"""The blockchain database triple (R, I, T)."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.errors import IntegrityViolationError, ReproError
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


@pytest.fixture
def schema():
    return make_schema({"R": ["a", "b"]})


@pytest.fixture
def constraints(schema):
    return ConstraintSet(schema, [Key("R", ["a"], schema)])


def test_construction_validates_current_state(schema, constraints):
    bad = Database.from_dict(schema, {"R": [(1, "x"), (1, "y")]})
    with pytest.raises(IntegrityViolationError) as info:
        BlockchainDatabase(bad, constraints)
    assert info.value.violations


def test_validation_can_be_skipped(schema, constraints):
    bad = Database.from_dict(schema, {"R": [(1, "x"), (1, "y")]})
    db = BlockchainDatabase(bad, constraints, validate=False)
    assert db.current is bad


def test_pending_management(schema, constraints, figure2):
    current = Database.from_dict(schema, {"R": [(1, "x")]})
    db = BlockchainDatabase(current, constraints)
    tx = Transaction({"R": [(2, "y")]}, tx_id="T1")
    db.add_pending(tx)
    assert db.pending_ids == ("T1",)
    assert db.transaction("T1") is tx
    removed = db.remove_pending("T1")
    assert removed is tx
    assert db.pending_ids == ()


def test_duplicate_pending_id_rejected(schema, constraints):
    current = Database.from_dict(schema, {"R": []})
    db = BlockchainDatabase(current, constraints)
    db.add_pending(Transaction({"R": [(1, "x")]}, tx_id="T1"))
    with pytest.raises(ReproError):
        db.add_pending(Transaction({"R": [(2, "y")]}, tx_id="T1"))


def test_pending_unknown_relation_rejected(schema, constraints):
    current = Database.from_dict(schema, {"R": []})
    db = BlockchainDatabase(current, constraints)
    with pytest.raises(ReproError):
        db.add_pending(Transaction({"Nope": [(1,)]}, tx_id="T1"))


def test_pending_bad_arity_rejected(schema, constraints):
    current = Database.from_dict(schema, {"R": []})
    db = BlockchainDatabase(current, constraints)
    from repro.errors import SchemaError

    with pytest.raises(SchemaError):
        db.add_pending(Transaction({"R": [(1,)]}, tx_id="T1"))


def test_missing_pending_lookup(schema, constraints):
    db = BlockchainDatabase(Database(schema), constraints)
    with pytest.raises(ReproError):
        db.transaction("nope")


def test_pending_need_not_be_mutually_consistent(schema, constraints):
    # The whole point of the model: T may contain contradicting txs.
    db = BlockchainDatabase(Database(schema), constraints)
    db.add_pending(Transaction({"R": [(1, "x")]}, tx_id="T1"))
    db.add_pending(Transaction({"R": [(1, "y")]}, tx_id="T2"))
    assert len(db.pending) == 2


def test_figure2_fixture_is_valid(figure2):
    assert len(figure2.pending) == 5
    assert figure2.current.total_tuples() == 8
