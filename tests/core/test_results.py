"""Result and statistics types."""

from repro.core.results import DCSatResult, DCSatStats


def test_result_truthiness():
    assert DCSatResult(satisfied=True)
    assert not DCSatResult(satisfied=False, witness=frozenset({"T1"}))


def test_result_repr():
    satisfied = repr(DCSatResult(satisfied=True))
    assert "satisfied" in satisfied
    violated = repr(
        DCSatResult(satisfied=False, witness=frozenset({"T1"}))
    )
    assert "violated" in violated and "T1" in violated


def test_stats_merge_accumulates():
    first = DCSatStats(
        components_total=2, components_pruned=1, cliques_enumerated=3,
        worlds_checked=3, evaluations=4, assignments_examined=5,
        parallel_tasks=1, elapsed_seconds=0.25,
    )
    second = DCSatStats(
        components_total=1, components_pruned=0, cliques_enumerated=2,
        worlds_checked=2, evaluations=2, assignments_examined=1,
        parallel_tasks=2, elapsed_seconds=0.5,
    )
    first.merge(second)
    assert first.components_total == 3
    assert first.components_pruned == 1
    assert first.cliques_enumerated == 5
    assert first.worlds_checked == 5
    assert first.evaluations == 6
    assert first.assignments_examined == 6
    assert first.parallel_tasks == 3
    assert first.elapsed_seconds == 0.75


def test_stats_merge_keeps_identity_fields():
    # Merging worker stats into a coordinator's must not erase which
    # algorithm ran or whether a short-circuit decided the verdict.
    first = DCSatStats(algorithm="opt", short_circuit_used=False)
    second = DCSatStats(
        algorithm="naive", short_circuit_used=True, short_circuit_result=True
    )
    first.merge(second)
    assert first.algorithm == "opt"  # first non-empty wins
    assert first.short_circuit_used is True  # OR-propagated
    assert first.short_circuit_result is True  # first non-None wins

    empty = DCSatStats()
    empty.merge(DCSatStats(algorithm="opt-pool", short_circuit_result=False))
    assert empty.algorithm == "opt-pool"
    assert empty.short_circuit_result is False

    keeper = DCSatStats(short_circuit_result=True)
    keeper.merge(DCSatStats(short_circuit_result=False))
    assert keeper.short_circuit_result is True


def test_stats_defaults():
    stats = DCSatStats()
    assert stats.algorithm == ""
    assert stats.short_circuit_result is None
    assert stats.elapsed_seconds == 0.0
