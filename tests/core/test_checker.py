"""DCSatChecker: steady-state maintenance, dry runs, backends, stats."""

import pytest

from repro.core.checker import DCSatChecker
from repro.errors import AlgorithmError
from repro.relational.transaction import Transaction
from tests.conftest import figure2_database

QS_U8 = "q() <- TxOut(t, s, 'U8Pk', a)"


class TestSteadyState:
    def test_commit_changes_answers(self, figure2):
        checker = DCSatChecker(figure2)
        assert not checker.check(QS_U8).satisfied
        # Commit T5: it kills T1, hence T2 and T4 — U8Pk unreachable.
        checker.commit("T5")
        result = checker.check(QS_U8)
        assert result.satisfied

    def test_commit_chain_keeps_consistency(self, figure2):
        checker = DCSatChecker(figure2)
        for tx_id in ("T1", "T2", "T3", "T4"):
            checker.commit(tx_id)
        # U8Pk is now committed: the constraint is violated by R itself.
        result = checker.check(QS_U8)
        assert not result.satisfied
        assert result.witness == frozenset()
        assert result.stats.algorithm == "state-check"

    def test_forget_removes_possibility(self, figure2):
        checker = DCSatChecker(figure2)
        checker.forget("T4")
        assert checker.check(QS_U8).satisfied

    def test_issue_adds_possibility(self, figure2):
        checker = DCSatChecker(figure2)
        assert checker.check("q() <- TxOut(t, s, 'NewPk', a)").satisfied
        checker.issue(
            Transaction({"TxOut": [(9, 1, "NewPk", 1.0)]}, tx_id="T9")
        )
        assert not checker.check("q() <- TxOut(t, s, 'NewPk', a)").satisfied

    def test_fd_graph_updated_on_commit(self, figure2):
        checker = DCSatChecker(figure2)
        checker.commit("T1")
        # T5 spends the same output as the now-committed T1: dead.
        assert "T5" in checker.fd_graph.never_appendable

    def test_commit_returns_transaction(self, figure2):
        tx = DCSatChecker(figure2).commit("T3")
        assert tx.tx_id == "T3"

    def test_absorb_external_facts(self, figure2):
        """Facts committed without ever being pending (e.g. a coinbase)."""
        checker = DCSatChecker(figure2)
        external = Transaction(
            {"TxOut": [(99, 1, "CoinbasePk", 50.0)]}, tx_id="cb"
        )
        checker.absorb(external)
        result = checker.check("q() <- TxOut(99, 1, 'CoinbasePk', a)")
        assert not result.satisfied
        assert result.witness == frozenset()  # it is in R itself

    def test_absorb_kills_clashing_pending(self, figure2):
        # Absorbing a spend of TxOut(2,2) makes T1 and T5 unappendable.
        checker = DCSatChecker(figure2)
        external = Transaction(
            {
                "TxOut": [(99, 1, "XPk", 4.0)],
                "TxIn": [(2, 2, "U2Pk", 4.0, 99, "U2Sig")],
            },
            tx_id="external-spend",
        )
        checker.absorb(external)
        assert {"T1", "T5"} <= checker.fd_graph.never_appendable
        assert checker.check("q() <- TxOut(t, s, 'U8Pk', a)").satisfied


class TestDryRun:
    def test_dry_run_restores_state(self, figure2):
        checker = DCSatChecker(figure2)
        before = set(figure2.pending_ids)
        tx = Transaction({"TxOut": [(9, 1, "XPk", 1.0)]}, tx_id="T9")
        result = checker.dry_run(tx, "q() <- TxOut(t, s, 'XPk', a)")
        assert not result.satisfied
        assert set(figure2.pending_ids) == before
        # And the hypothetical fact is gone again.
        assert checker.check("q() <- TxOut(t, s, 'XPk', a)").satisfied

    def test_dry_run_restores_on_error(self, figure2):
        checker = DCSatChecker(figure2)
        before = set(figure2.pending_ids)
        tx = Transaction({"TxOut": [(9, 1, "XPk", 1.0)]}, tx_id="T9")
        with pytest.raises(AlgorithmError):
            checker.dry_run(tx, QS_U8, algorithm="nonsense")
        assert set(figure2.pending_ids) == before

    def test_example4_alice_scenario(self):
        """Example 4: reissuing unsafely vs. safely, decided by dry run.

        Interesting aside: within Figure 2 itself an unsafe reissue is
        impossible — Alice's only other coin is T1's change, and T1
        conflicts with T5 — so we give Alice one extra committed coin.
        """
        db = figure2_database()
        db.current.insert("TxOut", (2, 3, "U2Pk", 2.0))
        checker = DCSatChecker(db)
        # Alice = U2Pk already has T5 pending (4.0 to U7Pk).  Reissuing
        # from an *independent* output allows double payment:
        unsafe = Transaction(
            {
                "TxIn": [(2, 3, "U2Pk", 2.0, 9, "U2Sig")],
                "TxOut": [(9, 1, "U7Pk", 2.0)],
            },
            tx_id="Reissue",
        )
        double_pay = (
            "q() <- TxIn(p1, s1, 'U2Pk', a1, n1, 'U2Sig'), TxOut(n1, o1, 'U7Pk', b1), "
            "TxIn(p2, s2, 'U2Pk', a2, n2, 'U2Sig'), TxOut(n2, o2, 'U7Pk', b2), "
            "n1 != n2"
        )
        assert not checker.dry_run(unsafe, double_pay).satisfied
        # Reissuing by double-spending T5's input is safe:
        safe = Transaction(
            {
                "TxIn": [(2, 2, "U2Pk", 4.0, 9, "U2Sig")],
                "TxOut": [(9, 1, "U7Pk", 4.0)],
            },
            tx_id="SafeReissue",
        )
        assert checker.dry_run(safe, double_pay).satisfied


class TestBackends:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_backends_agree(self, backend):
        checker = DCSatChecker(figure2_database(), backend=backend)
        assert not checker.check(QS_U8).satisfied
        assert checker.check("q() <- TxOut(t, s, 'NoPk', a)").satisfied
        checker.close()

    def test_sqlite_steady_state(self):
        checker = DCSatChecker(figure2_database(), backend="sqlite")
        checker.commit("T5")
        assert checker.check(QS_U8).satisfied
        checker.issue(
            Transaction({"TxOut": [(9, 1, "ZPk", 1.0)]}, tx_id="T9")
        )
        assert not checker.check("q() <- TxOut(t, s, 'ZPk', a)").satisfied
        checker.forget("T9")
        assert checker.check("q() <- TxOut(t, s, 'ZPk', a)").satisfied
        checker.close()

    def test_unknown_backend(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            DCSatChecker(figure2_database(), backend="oracle")

    def test_context_manager(self):
        with DCSatChecker(figure2_database()) as checker:
            assert not checker.check(QS_U8).satisfied


class TestStats:
    def test_elapsed_recorded(self, figure2):
        result = DCSatChecker(figure2).check(QS_U8)
        assert result.stats.elapsed_seconds > 0

    def test_unknown_algorithm(self, figure2):
        with pytest.raises(AlgorithmError):
            DCSatChecker(figure2).check(QS_U8, algorithm="quantum")

    def test_string_queries_parsed(self, figure2):
        result = DCSatChecker(figure2).check(QS_U8)
        assert not result.satisfied

    def test_active_set_cleared_after_check(self, figure2):
        checker = DCSatChecker(figure2)
        checker.check(QS_U8)
        assert checker.workspace.active == frozenset()
