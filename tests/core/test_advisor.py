"""The issuance advisor: Example 4's workflow as an API."""

import pytest

from repro.core.advisor import IssuanceAdvisor
from repro.core.checker import DCSatChecker
from repro.core.contradiction import contradicting_transaction
from repro.errors import ReproError
from repro.relational.transaction import Transaction
from tests.conftest import figure2_database

DOUBLE_PAY = (
    "q() <- TxIn(p1, s1, 'U2Pk', a1, n1, 'U2Sig'), TxOut(n1, o1, 'U7Pk', b1), "
    "TxIn(p2, s2, 'U2Pk', a2, n2, 'U2Sig'), TxOut(n2, o2, 'U7Pk', b2), "
    "n1 != n2"
)


@pytest.fixture
def advisor():
    db = figure2_database()
    # Give Alice an extra independent coin (see test_checker for why).
    db.current.insert("TxOut", (2, 3, "U2Pk", 2.0))
    advisor = IssuanceAdvisor(DCSatChecker(db))
    advisor.register("no-double-pay", DOUBLE_PAY)
    return advisor


def _unsafe_reissue() -> Transaction:
    return Transaction(
        {
            "TxIn": [(2, 3, "U2Pk", 2.0, 9, "U2Sig")],
            "TxOut": [(9, 1, "U7Pk", 2.0)],
        },
        tx_id="Reissue",
    )


def _safe_reissue() -> Transaction:
    return Transaction(
        {
            "TxIn": [(2, 2, "U2Pk", 4.0, 9, "U2Sig")],
            "TxOut": [(9, 1, "U7Pk", 4.0)],
        },
        tx_id="SafeReissue",
    )


class TestAdvice:
    def test_safe_issuance(self, advisor):
        advice = advisor.advise(_safe_reissue())
        assert advice.safe
        assert "SAFE TO ISSUE" in advice.render()

    def test_unsafe_issuance_explained(self, advisor):
        advice = advisor.advise(_unsafe_reissue())
        assert not advice.safe
        assert len(advice.violations) == 1
        violation = advice.violations[0]
        assert violation.name == "no-double-pay"
        # The co-conspirator is T5 (the original payment).
        assert "T5" in violation.culprits
        assert "T5" in advice.suggestion
        assert "contradiction" in advice.suggestion

    def test_database_untouched_either_way(self, advisor):
        before = set(advisor.checker.db.pending_ids)
        advisor.advise(_unsafe_reissue())
        advisor.advise(_safe_reissue())
        assert set(advisor.checker.db.pending_ids) == before

    def test_suggestion_leads_to_safety(self, advisor):
        """Follow the advisor's advice: contradict the culprit, re-ask."""
        advice = advisor.advise(_unsafe_reissue())
        # The culprit set names both co-stars; the *other* one (still
        # pending) is the transaction to contradict.
        culprit = next(
            iter(advice.violations[0].culprits - {"Reissue"})
        )
        db = advisor.checker.db
        replacement = contradicting_transaction(
            db, db.transaction(culprit), tx_id="Replacement"
        )
        followup = advisor.advise(replacement, explain=False)
        assert followup.safe

    def test_no_explanations_mode(self, advisor):
        advice = advisor.advise(_unsafe_reissue(), explain=False)
        assert not advice.safe
        assert advice.violations[0].explanation is None
        assert advice.violations[0].culprits == frozenset()

    def test_multiple_constraints(self, advisor):
        advisor.register("no-u9", "q() <- TxOut(t, s, 'U9Pk', a)")
        bad = Transaction(
            {
                "TxIn": [(2, 3, "U2Pk", 2.0, 9, "U2Sig")],
                "TxOut": [(9, 1, "U9Pk", 2.0)],
            },
            tx_id="BadPayee",
        )
        advice = advisor.advise(bad)
        names = {v.name for v in advice.violations}
        assert names == {"no-u9"}

    def test_duplicate_registration(self, advisor):
        with pytest.raises(ReproError):
            advisor.register("no-double-pay", DOUBLE_PAY)

    def test_requires_constraints(self):
        empty = IssuanceAdvisor(DCSatChecker(figure2_database()))
        with pytest.raises(ReproError):
            empty.advise(_safe_reissue())

    def test_render_unsafe(self, advisor):
        text = advisor.advise(_unsafe_reissue()).render()
        assert "DO NOT ISSUE" in text
        assert "no-double-pay" in text
