"""Fd-graph clique structure on characteristic conflict shapes."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.fd_graph import FdTransactionGraph
from repro.core.workspace import Workspace
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


def _db(pending_rows: dict[str, list[tuple]]) -> BlockchainDatabase:
    """Pending txs over R(key, val) with a key constraint."""
    schema = make_schema({"R": ["k", "v"]})
    constraints = ConstraintSet(schema, [Key("R", ["k"], schema)])
    pending = [
        Transaction({"R": rows}, tx_id=tx_id)
        for tx_id, rows in pending_rows.items()
    ]
    return BlockchainDatabase(Database(schema), constraints, pending)


def _graph(db) -> FdTransactionGraph:
    return FdTransactionGraph(Workspace(db))


class TestConflictShapes:
    def test_disjoint_pairs_exponential_cliques(self):
        """k independent conflict pairs -> 2^k maximal cliques, each
        picking one side per pair (the Figure 6e/6f mechanism)."""
        rows = {}
        for pair in range(4):
            rows[f"a{pair}"] = [(pair, "left")]
            rows[f"b{pair}"] = [(pair, "right")]
        graph = _graph(_db(rows))
        cliques = list(graph.maximal_cliques())
        assert len(cliques) == 16
        for clique in cliques:
            for pair in range(4):
                assert (f"a{pair}" in clique) != (f"b{pair}" in clique)

    def test_conflict_chain(self):
        """A path in the conflict graph: a-b, b-c conflicts.  Maximal
        cliques of the fd-graph = independent sets of the chain."""
        rows = {
            "a": [(1, "x")],
            "b": [(1, "y"), (2, "x")],
            "c": [(2, "y")],
        }
        graph = _graph(_db(rows))
        cliques = set(graph.maximal_cliques())
        assert cliques == {frozenset({"a", "c"}), frozenset({"b"})}

    def test_conflict_star(self):
        """One tx conflicting with everyone: either it alone or all the
        rest."""
        rows = {"hub": [(i, "hub") for i in range(4)]}
        for i in range(4):
            rows[f"leaf{i}"] = [(i, f"leaf{i}")]
        graph = _graph(_db(rows))
        cliques = set(graph.maximal_cliques())
        leaves = frozenset(f"leaf{i}" for i in range(4))
        assert cliques == {frozenset({"hub"}), leaves}

    def test_free_riders_join_every_clique(self):
        rows = {
            "a": [(1, "x")],
            "b": [(1, "y")],
            "free": [(9, "z")],
        }
        graph = _graph(_db(rows))
        cliques = set(graph.maximal_cliques())
        assert all("free" in clique for clique in cliques)
        assert len(cliques) == 2

    def test_agreeing_duplicates_do_not_conflict(self):
        rows = {
            "a": [(1, "same")],
            "b": [(1, "same")],  # identical tuple: no FD violation
        }
        graph = _graph(_db(rows))
        assert graph.has_edge("a", "b")
        assert list(graph.maximal_cliques()) == [frozenset({"a", "b"})]


class TestAgainstNetworkx:
    def test_matches_networkx_on_random_conflicts(self):
        import itertools
        import random

        import networkx as nx

        rng = random.Random(5)
        for trial in range(10):
            rows = {}
            for index in range(8):
                key = rng.randint(0, 3)
                rows[f"t{index}"] = [(key, rng.randint(0, 2))]
            graph = _graph(_db(rows))
            reference = nx.Graph()
            reference.add_nodes_from(graph.nodes)
            for u, v in itertools.combinations(sorted(graph.nodes), 2):
                if graph.has_edge(u, v):
                    reference.add_edge(u, v)
            ours = set(graph.maximal_cliques())
            expected = {frozenset(c) for c in nx.find_cliques(reference)}
            assert ours == expected, trial
