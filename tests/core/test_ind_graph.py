"""The ind-q-transaction graph G^{q,ind}_T (Figure 3, right)."""

import pytest

from repro.core.ind_graph import IndQTransactionGraph
from repro.core.workspace import Workspace
from repro.query.parser import parse_query


@pytest.fixture
def figure2_ind(figure2):
    return IndQTransactionGraph(Workspace(figure2))


class TestThetaIComponents:
    def test_figure3_right_components(self, figure2_ind):
        # Figure 3 (right): the inclusion dependencies link T1–T2,
        # T2–T4, T3–T4 and T1–T5 (both spend TxOut(2,2)); T5's output
        # chain is separate, but the shared consumed output joins it.
        components = {frozenset(c) for c in figure2_ind.components()}
        # T1 and T5 both insert TxIn rows whose (prevTxId, prevSer,...)
        # projections match TxOut(2, 2, ...), but Θ_I links child rows to
        # *parent* rows — TxOut(2,2) lives in R, so the T1–T5 link does
        # not arise from Θ_I alone.  T1–T2 (T2 spends T1's output),
        # T2/T3–T4 (T4 spends both) make {T1, T2, T3, T4} one component.
        assert frozenset({"T1", "T2", "T3", "T4"}) in components
        assert frozenset({"T5"}) in components

    def test_all_transactions_covered(self, figure2_ind, figure2):
        components = figure2_ind.components()
        covered = {tx for c in components for tx in c}
        assert covered == set(figure2.pending_ids)


class TestQueryAugmentation:
    def test_query_constants_do_not_merge_unrelated(self, figure2_ind):
        # qs has a single atom: no Θ_q pairs, components unchanged.
        q = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
        base = {frozenset(c) for c in figure2_ind.components()}
        augmented = {frozenset(c) for c in figure2_ind.components(q)}
        assert base == augmented

    def test_query_join_merges(self, figure2_ind):
        # Both T4 and T5 create TxOut rows for U7Pk; a query joining two
        # TxOut atoms on pk merges their components.
        q = parse_query("q() <- TxOut(t1, s1, pk, a1), TxOut(t2, s2, pk, a2)")
        components = {frozenset(c) for c in figure2_ind.components(q)}
        merged = next(c for c in components if "T5" in c)
        assert "T4" in merged

    def test_invalidate_rebuilds(self, figure2, figure2_ind):
        before = len(figure2_ind.components())
        figure2_ind.invalidate()
        after = len(figure2_ind.components())
        assert before == after


class TestUnionFind:
    def test_clone_isolation(self):
        from repro.core.ind_graph import _UnionFind

        uf = _UnionFind()
        uf.union("a", "b")
        clone = uf.clone()
        clone.union("a", "c")
        assert uf.find("c") == "c"
        assert clone.find("a") == clone.find("c")

    def test_union_all(self):
        from repro.core.ind_graph import _UnionFind

        uf = _UnionFind()
        uf.union_all(["a", "b", "c"])
        assert uf.find("a") == uf.find("c")

    def test_components(self):
        from repro.core.ind_graph import _UnionFind

        uf = _UnionFind()
        uf.add("x")
        uf.union("a", "b")
        components = {frozenset(c) for c in uf.components()}
        assert components == {frozenset({"a", "b"}), frozenset({"x"})}
