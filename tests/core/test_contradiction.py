"""Deriving contradicting transactions (future-work feature)."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.contradiction import (
    are_contradicting,
    conflict_candidates,
    contradicting_transaction,
)
from repro.errors import ReproError
from repro.relational.constraints import ConstraintSet, FunctionalDependency
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


def test_contradicts_figure2_t1(figure2):
    target = figure2.transaction("T1")
    conflict = contradicting_transaction(figure2, target, tx_id="T1x")
    assert are_contradicting(figure2, target, conflict)


def test_contradiction_excludes_coexistence(figure2):
    from repro.core.possible_worlds import enumerate_possible_worlds

    target = figure2.transaction("T5")
    conflict = contradicting_transaction(figure2, target, tx_id="T5x")
    figure2.add_pending(conflict)
    for world in enumerate_possible_worlds(figure2):
        assert not {"T5", "T5x"} <= world


def test_candidates_enumerated(figure2):
    target = figure2.transaction("T1")
    candidates = conflict_candidates(figure2, target)
    assert candidates
    relations = {rel for rel, _, _ in candidates}
    assert relations <= {"TxIn", "TxOut"}


def test_payload_carried(figure2):
    target = figure2.transaction("T1")
    payload = [("TxOut", (77, 1, "PayloadPk", 1.0))]
    conflict = contradicting_transaction(
        figure2, target, payload=payload, tx_id="T1y"
    )
    assert ("TxOut", (77, 1, "PayloadPk", 1.0)) in conflict.facts


def test_no_fd_governed_fact_fails():
    schema = make_schema({"Log": ["entry"]})
    constraints = ConstraintSet(schema)  # no constraints at all
    db = BlockchainDatabase(Database(schema), constraints)
    target = Transaction({"Log": [("hello",)]}, tx_id="T1")
    with pytest.raises(ReproError):
        contradicting_transaction(db, target)


def test_full_lhs_fd_cannot_be_contradicted():
    # An FD whose rhs ⊆ lhs gives no mutable position.
    schema = make_schema({"R": ["a", "b"]})
    constraints = ConstraintSet(
        schema, [FunctionalDependency("R", ["a", "b"], ["a"])]
    )
    db = BlockchainDatabase(Database(schema), constraints)
    target = Transaction({"R": [(1, 2)]}, tx_id="T1")
    with pytest.raises(ReproError):
        contradicting_transaction(db, target)


def test_custom_mutation(figure2):
    target = figure2.transaction("T1")
    conflict = contradicting_transaction(
        figure2, target, tx_id="T1z", mutate=lambda value: "REPLACED"
        if isinstance(value, str) else value + 1000,
    )
    assert are_contradicting(figure2, target, conflict)


def test_safe_reissue_workflow(figure2):
    """The motivating-example workflow: contradict the stuck payment,
    then verify with a dry run that no world pays twice."""
    checker = DCSatChecker(figure2)
    target = figure2.transaction("T5")  # User2's 4-coin transfer to U7Pk
    # Reissue by contradiction: same TxIn key, different newTxId.
    conflict = contradicting_transaction(figure2, target, tx_id="T5replacement")
    double_spend_constraint = (
        "q() <- TxIn(pt1, ps1, 'U2Pk', 4.0, n1, s1), "
        "TxIn(pt2, ps2, 'U2Pk', 4.0, n2, s2), n1 != n2"
    )
    result = checker.dry_run(conflict, double_spend_constraint)
    assert result.satisfied  # the replacement cannot coexist with T5
