"""JSON serialization round trips."""

import pytest

from repro import serialize
from repro.core.checker import DCSatChecker
from repro.errors import ReproError
from repro.relational.transaction import Transaction
from tests.conftest import EXAMPLE3_WORLDS, figure2_database


def test_round_trip_preserves_everything(figure2):
    restored = serialize.loads(serialize.dumps(figure2))
    assert restored.current == figure2.current
    assert [tx.tx_id for tx in restored.pending] == [
        tx.tx_id for tx in figure2.pending
    ]
    for tx_id in figure2.pending_ids:
        assert restored.transaction(tx_id).facts == figure2.transaction(tx_id).facts
    assert len(restored.constraints.fds) == len(figure2.constraints.fds)
    assert len(restored.constraints.inds) == len(figure2.constraints.inds)


def test_round_trip_preserves_semantics(figure2):
    from repro.core.possible_worlds import enumerate_possible_worlds

    restored = serialize.loads(serialize.dumps(figure2))
    assert set(enumerate_possible_worlds(restored)) == set(EXAMPLE3_WORLDS)
    checker = DCSatChecker(restored)
    assert not checker.check("q() <- TxOut(t, s, 'U8Pk', a)").satisfied


def test_dump_load_file(figure2, tmp_path):
    path = tmp_path / "db.json"
    serialize.dump(figure2, str(path))
    restored = serialize.load(str(path))
    assert restored.current == figure2.current


def test_deterministic_output(figure2):
    assert serialize.dumps(figure2) == serialize.dumps(figure2_database())


def test_version_checked(figure2):
    payload = serialize.database_to_dict(figure2)
    payload["version"] = 99
    with pytest.raises(ReproError):
        serialize.database_from_dict(payload)


def test_malformed_payload(figure2):
    payload = serialize.database_to_dict(figure2)
    del payload["constraints"]
    with pytest.raises(ReproError):
        serialize.database_from_dict(payload)


def test_non_scalar_values_rejected():
    from repro.core.blockchain_db import BlockchainDatabase
    from repro.relational.constraints import ConstraintSet
    from repro.relational.database import Database, make_schema

    schema = make_schema({"R": ["a"]})
    db = BlockchainDatabase(
        Database.from_dict(schema, {"R": [(b"bytes-value",)]}),
        ConstraintSet(schema),
    )
    with pytest.raises(ReproError):
        serialize.dumps(db)


def test_validate_flag_passthrough():
    from repro.core.blockchain_db import BlockchainDatabase
    from repro.relational.constraints import ConstraintSet, Key
    from repro.relational.database import Database, make_schema
    from repro.errors import IntegrityViolationError

    schema = make_schema({"R": ["a", "b"]})
    constraints = ConstraintSet(schema, [Key("R", ["a"], schema)])
    broken = BlockchainDatabase(
        Database.from_dict(schema, {"R": [(1, "x"), (1, "y")]}),
        constraints,
        validate=False,
    )
    payload = serialize.database_to_dict(broken)
    with pytest.raises(IntegrityViolationError):
        serialize.database_from_dict(payload)
    restored = serialize.database_from_dict(payload, validate=False)
    assert len(restored.current["R"]) == 2


def test_bitcoin_dataset_round_trip():
    from repro.bitcoin.generator import DatasetSpec, generate_dataset

    dataset = generate_dataset(
        DatasetSpec(name="t", committed_blocks=5, pending_blocks=2,
                    txs_per_block=3, users=6, contradictions=2, seed=3)
    )
    db = dataset.to_blockchain_database()
    restored = serialize.loads(serialize.dumps(db))
    assert restored.current == db.current
    assert len(restored.pending) == len(db.pending)
