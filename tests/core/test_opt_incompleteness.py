"""The OptDCSat soundness caveat (reproduction finding).

Proposition 2 as stated can fail when two pending transactions are
joined only through tuples of the *current state*: the query's variable
chain passes through R, so no Θ equality constraint links the two
transactions directly, they land in different components, and OptDCSat
never evaluates a world containing both.  This test pins down the
divergence on the crafted instance from the module docstring of
:mod:`repro.core.opt` — and shows that NaiveDCSat, AssignDCSat and brute
force all get it right.
"""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.query.analysis import is_connected
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


@pytest.fixture
def bridge_db() -> BlockchainDatabase:
    """A(x) and C(y) pending, joined only through committed B(1, 2)."""
    schema = make_schema({"A": ["x"], "B": ["x", "y"], "C": ["y"]})
    # A key constraint keeps the fd-graph machinery honest but creates
    # no conflicts here.
    constraints = ConstraintSet(schema, [Key("B", ["x"], schema)])
    current = Database.from_dict(schema, {"A": [], "B": [(1, 2)], "C": []})
    pending = [
        Transaction({"A": [(1,)]}, tx_id="TA"),
        Transaction({"C": [(2,)]}, tx_id="TC"),
    ]
    return BlockchainDatabase(current, constraints, pending)


BRIDGE_QUERY = "q() <- A(x), B(x, y), C(y)"


def test_query_is_connected(bridge_db):
    assert is_connected(parse_query(BRIDGE_QUERY))


def test_sound_algorithms_find_the_violation(bridge_db):
    checker = DCSatChecker(bridge_db)
    for algorithm in ("naive", "assign", "brute"):
        result = checker.check(BRIDGE_QUERY, algorithm=algorithm)
        assert not result.satisfied, algorithm
        assert result.witness == frozenset({"TA", "TC"})


def test_opt_misses_the_r_bridged_assignment(bridge_db):
    """Documents the paper-faithful behaviour: OptDCSat answers
    'satisfied' although the world R ∪ TA ∪ TC violates the constraint.

    If this test ever fails because OptDCSat returns unsatisfied, the
    implementation has diverged from the paper's Figure 5 — update the
    reproduction notes in DESIGN.md accordingly.
    """
    checker = DCSatChecker(bridge_db)
    result = checker.check(BRIDGE_QUERY, algorithm="opt", short_circuit=False)
    assert result.satisfied  # the documented false negative

    # The short-circuit does not mask the divergence either: q is true
    # over R ∪ T, so the full algorithm runs.
    result2 = checker.check(BRIDGE_QUERY, algorithm="opt", short_circuit=True)
    assert result2.satisfied
    assert result2.stats.short_circuit_result is False


def test_direct_link_restores_opt(bridge_db):
    """When the bridge tuple is *pending* instead of committed, the
    Θ edges exist and OptDCSat is correct again."""
    schema = make_schema({"A": ["x"], "B": ["x", "y"], "C": ["y"]})
    constraints = ConstraintSet(schema, [Key("B", ["x"], schema)])
    current = Database.from_dict(schema, {"A": [], "B": [], "C": []})
    pending = [
        Transaction({"A": [(1,)]}, tx_id="TA"),
        Transaction({"B": [(1, 2)]}, tx_id="TB"),
        Transaction({"C": [(2,)]}, tx_id="TC"),
    ]
    db = BlockchainDatabase(current, constraints, pending)
    checker = DCSatChecker(db)
    result = checker.check(BRIDGE_QUERY, algorithm="opt")
    assert not result.satisfied
    assert result.witness == frozenset({"TA", "TB", "TC"})
