"""Randomized churn parity: ledger-maintained verdicts equal a fresh
recompute after *every* event of a seeded mempool-style trace.

The incremental monitor and a recompute mirror (``incremental=False``)
receive the same stream of issue / commit / forget / absorb events over
a schema mixing fd cliques, inclusion dependencies and co-written
relations; after each event every constraint's verdict — and, under the
default ``witness_mode="strict"``, its witness — must be identical, and
each op's invalidation list must agree.  Parameterized over backends ×
engines × planners; ``REPRO_CHURN_EVENTS`` scales the trace length
(default 200, the acceptance floor).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.incremental import revalidate_witness
from repro.core.monitor import ConstraintMonitor
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction

EVENTS = int(os.environ.get("REPRO_CHURN_EVENTS", "200"))

#: Standing constraints mixing satisfied/violated verdicts, fd-clique
#: joins, ind-dependent relations and a co-written reach.
CHURN_CONSTRAINTS = {
    "orphan-c": "q() <- C(3, v)",
    "b-conflict": "q() <- B(k, 'x'), B(k, 'y')",
    "any-a": "q() <- A(x)",
    "linked": "q() <- P(k), C(k, 'w')",
}


def churn_db() -> BlockchainDatabase:
    schema = make_schema(
        {"P": ["k"], "C": ["k", "v"], "B": ["k", "v"], "A": ["x"]}
    )
    constraints = ConstraintSet(
        schema,
        [
            Key("B", ["k"], schema),
            InclusionDependency("C", ["k"], "P", ["k"]),
        ],
    )
    current = Database.from_dict(
        schema, {"P": [(0,)], "C": [], "B": [(9, "z")], "A": []}
    )
    return BlockchainDatabase(current, constraints)


def random_transaction(rng: random.Random, counter: int) -> Transaction:
    shape = rng.randrange(6)
    k = rng.randrange(5)
    tx_id = f"X{counter}"
    if shape == 0:
        facts = {"P": [(k,)]}
    elif shape == 1:
        facts = {"C": [(k, rng.choice("vwz"))]}
    elif shape == 2:
        facts = {"B": [(k, rng.choice("xyz"))]}
    elif shape == 3:
        facts = {"A": [(counter,)]}
    elif shape == 4:
        # Co-written: one include-or-not decision spanning A and B.
        facts = {"A": [(counter,)], "B": [(k, rng.choice("xy"))]}
    else:
        facts = {"P": [(k,)], "C": [(k, rng.choice("vw"))]}
    return Transaction(facts, tx_id=tx_id)


def churn_events(seed: int, events: int):
    """A deterministic trace: (kind, payload) pairs, replayable onto
    any number of monitors."""
    rng = random.Random(seed)
    pending: list[str] = []
    counter = 0
    out = []
    for _ in range(events):
        kind = rng.choices(
            ["issue", "commit", "forget", "absorb"], weights=[5, 2, 2, 1]
        )[0]
        if kind in ("commit", "forget") and not pending:
            kind = "issue"
        if kind == "issue":
            tx = random_transaction(rng, counter)
            counter += 1
            pending.append(tx.tx_id)
            out.append(("issue", tx))
        elif kind == "absorb":
            tx = random_transaction(rng, counter)
            counter += 1
            out.append(("absorb", tx))
        else:
            tx_id = pending.pop(rng.randrange(len(pending)))
            out.append((kind, tx_id))
    return out


def apply_event(monitor, kind, payload):
    if kind == "issue":
        return monitor.issue(payload)
    if kind == "commit":
        return monitor.commit(payload)
    if kind == "forget":
        return monitor.forget(payload)
    return monitor.absorb(payload)


def assert_verdict_parity(incremental, mirror, event_index, strict=True):
    for name in CHURN_CONSTRAINTS:
        lhs = incremental.status(name, use_subsumption=False)
        rhs = mirror.status(name, use_subsumption=False)
        assert lhs.satisfied == rhs.satisfied, (
            f"verdict diverged for {name!r} after event {event_index}: "
            f"ledger={lhs.satisfied} fresh={rhs.satisfied}"
        )
        if strict:
            assert lhs.witness == rhs.witness, (
                f"witness diverged for {name!r} after event {event_index}: "
                f"ledger={lhs.witness} fresh={rhs.witness}"
            )


CONFIGURATIONS = [
    ("memory", "sync", "set"),
    ("memory", "sync", "bitset"),
    ("sqlite", "sync", "set"),
    ("sqlite", "batched", "bitset"),
]


@pytest.mark.parametrize("backend,engine,planner", CONFIGURATIONS)
def test_churn_parity(backend, engine, planner):
    incremental = ConstraintMonitor(
        DCSatChecker(churn_db(), backend=backend, engine=engine, planner=planner)
    )
    mirror = ConstraintMonitor(
        DCSatChecker(
            churn_db(), backend=backend, engine=engine, planner=planner
        ),
        incremental=False,
    )
    for monitor in (incremental, mirror):
        for name, query in CHURN_CONSTRAINTS.items():
            monitor.register(name, query)
    for index, (kind, payload) in enumerate(churn_events(4242, EVENTS)):
        lhs = apply_event(incremental, kind, payload)
        rhs = apply_event(mirror, kind, payload)
        assert lhs == rhs, (
            f"invalidation lists diverged after event {index} ({kind})"
        )
        assert_verdict_parity(incremental, mirror, index)
    # The trace must actually have exercised the ledger.
    assert incremental.ledger.counters["reused"] > 0
    assert incremental.ledger.counters["swept"] > 0


def test_churn_parity_revalidate_mode():
    """``witness_mode="revalidate"`` guarantees verdict parity; its
    witnesses are valid violating possible worlds (possibly non-maximal,
    so no bit-identity assertion — docs/INCREMENTAL.md)."""
    incremental = ConstraintMonitor(
        DCSatChecker(churn_db()), witness_mode="revalidate"
    )
    mirror = ConstraintMonitor(DCSatChecker(churn_db()), incremental=False)
    for monitor in (incremental, mirror):
        for name, query in CHURN_CONSTRAINTS.items():
            monitor.register(name, query)
    for index, (kind, payload) in enumerate(churn_events(7, EVENTS)):
        apply_event(incremental, kind, payload)
        apply_event(mirror, kind, payload)
        assert_verdict_parity(incremental, mirror, index, strict=False)
        for name in CHURN_CONSTRAINTS:
            witness = incremental.status(name, use_subsumption=False).witness
            if witness is not None:
                checker = incremental.checker
                assert revalidate_witness(
                    checker.workspace,
                    checker.engine,
                    parse_query(CHURN_CONSTRAINTS[name]),
                    witness,
                ), f"invalid witness for {name!r} after event {index}"
                checker.workspace.clear_active()
    # Deterministic epilogue: the random trace may end with every
    # constraint fast-path-decidable, so force one dirty-entry probe.
    # B(7, ...) is outside the trace's key range: never committed, so
    # the check always reaches the ledger.
    for monitor in (incremental, mirror):
        monitor.register("late", "q() <- B(7, 'x'), B(7, 'y')")
        monitor.issue(Transaction({"B": [(7, "x")]}, tx_id="EP-X"))
        monitor.issue(Transaction({"B": [(7, "y")]}, tx_id="EP-Y"))
        assert monitor.status("late").satisfied
        monitor.absorb(Transaction({"B": [(8, "q")]}, tx_id="EP-ABS"))
        assert monitor.status("late").satisfied
    assert incremental.ledger.counters["revalidations"] > 0


def test_coupled_closure_commit_parity():
    """The PR 2 regression shape, through the parity harness: a commit
    into ``Parent`` must flip the ledger-maintained verdict of an
    ind-dependent ``Child`` constraint exactly as a fresh recompute."""
    def build():
        schema = make_schema(
            {"Parent": ["pid", "tag"], "Child": ["cid", "pid", "tag"]}
        )
        constraints = ConstraintSet(
            schema,
            [
                Key("Parent", ["pid"], schema),
                InclusionDependency(
                    "Child", ["pid", "tag"], "Parent", ["pid", "tag"]
                ),
            ],
        )
        return BlockchainDatabase(
            Database.from_dict(schema, {"Parent": [(2, "z")], "Child": []}),
            constraints,
            [
                Transaction({"Parent": [(1, "x")]}, tx_id="TP"),
                Transaction({"Parent": [(1, "y")]}, tx_id="TQ"),
                Transaction({"Child": [(10, 1, "x")]}, tx_id="TC"),
            ],
        )

    incremental = ConstraintMonitor(DCSatChecker(build()))
    mirror = ConstraintMonitor(DCSatChecker(build()), incremental=False)
    for monitor in (incremental, mirror):
        monitor.register("no-child", "q() <- Child(c, p, t)")
        assert not monitor.status("no-child").satisfied
    # Committing TQ makes TP never-appendable and TC loses its parent.
    assert incremental.commit("TQ") == mirror.commit("TQ") == ["no-child"]
    lhs, rhs = incremental.status("no-child"), mirror.status("no-child")
    assert lhs.satisfied and rhs.satisfied
    assert lhs.witness == rhs.witness
