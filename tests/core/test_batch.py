"""Batched denial-constraint checking."""

import pytest

from repro.core.checker import DCSatChecker
from repro.errors import AlgorithmError

QUERIES = [
    "q() <- TxOut(t, s, 'U8Pk', a)",       # violated (needs T1..T4)
    "q() <- TxOut(t, s, 'NobodyPk', a)",   # satisfied (short-circuit)
    "q() <- TxOut(t, s, 'U3Pk', a)",       # violated by R itself
    "[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 6",  # satisfied, needs worlds
    "[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 4",  # violated (T5)
]


@pytest.fixture
def checker(figure2):
    return DCSatChecker(figure2, assume_nonnegative_sums=True)


def test_batch_matches_sequential(checker):
    batch = checker.check_batch(QUERIES)
    sequential = [checker.check(query, algorithm="naive") for query in QUERIES]
    assert [r.satisfied for r in batch] == [r.satisfied for r in sequential]


def test_batch_verdict_details(checker):
    results = checker.check_batch(QUERIES)
    assert not results[0].satisfied and "T4" in results[0].witness
    assert results[1].satisfied and results[1].stats.short_circuit_result
    assert not results[2].satisfied and results[2].witness == frozenset()
    assert results[3].satisfied and results[3].stats.worlds_checked > 0
    assert not results[4].satisfied and "T5" in results[4].witness


def test_batch_shares_the_sweep(checker):
    """Two open constraints decided in one enumeration: neither pays for
    more cliques than the single-query run would."""
    open_queries = [QUERIES[0], QUERIES[3]]
    results = checker.check_batch(open_queries)
    assert all(r.stats.cliques_enumerated <= 2 for r in results)


def test_batch_rejects_non_monotone(checker):
    with pytest.raises(AlgorithmError):
        checker.check_batch(["[q(count()) <- TxOut(t, s, pk, a)] = 3"])


def test_batch_without_short_circuit(checker):
    results = checker.check_batch(QUERIES, short_circuit=False)
    assert [r.satisfied for r in results] == [False, True, False, True, False]


def test_empty_batch(checker):
    assert checker.check_batch([]) == []


def test_batch_on_empty_pending(figure2):
    for tx_id in list(figure2.pending_ids):
        figure2.remove_pending(tx_id)
    checker = DCSatChecker(figure2)
    results = checker.check_batch(
        ["q() <- TxOut(t, s, 'U3Pk', a)", "q() <- TxOut(t, s, 'U8Pk', a)"]
    )
    assert not results[0].satisfied  # in R
    assert results[1].satisfied
