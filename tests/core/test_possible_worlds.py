"""Possible worlds: enumeration, recognition (Prop. 1), getMaximal."""

import pytest

from repro.core.possible_worlds import (
    enumerate_possible_worlds,
    get_maximal,
    is_possible_world,
    world_database,
)
from repro.core.workspace import Workspace
from repro.errors import ReproError
from tests.conftest import EXAMPLE3_WORLDS


class TestEnumeration:
    def test_example3_worlds_exact(self, figure2):
        worlds = set(enumerate_possible_worlds(figure2))
        assert worlds == set(EXAMPLE3_WORLDS)

    def test_empty_world_first(self, figure2):
        first = next(iter(enumerate_possible_worlds(figure2)))
        assert first == frozenset()

    def test_limit_enforced(self, figure2):
        with pytest.raises(ReproError):
            list(enumerate_possible_worlds(figure2, limit=3))

    def test_ind_only_db(self, simple_ind_db):
        worlds = set(enumerate_possible_worlds(simple_ind_db))
        # V4 (C(3,.)) can never be added; V3 needs V2.
        assert frozenset({"V1", "V2", "V3"}) in worlds
        assert frozenset({"V3"}) not in worlds
        assert all("V4" not in w for w in worlds)

    def test_fd_only_db(self, simple_fd_db):
        worlds = set(enumerate_possible_worlds(simple_fd_db))
        # U1 and U2 clash on B's key.
        assert frozenset({"U1", "U3"}) in worlds
        assert frozenset({"U2", "U3"}) in worlds
        assert not any({"U1", "U2"} <= w for w in worlds)


class TestRecognition:
    def test_every_enumerated_world_is_recognized(self, figure2):
        for world in enumerate_possible_worlds(figure2):
            candidate = world_database(figure2, world)
            assert is_possible_world(figure2, candidate), world

    def test_non_worlds_rejected(self, figure2):
        # {T2} alone is not a world (T2 depends on T1).
        candidate = world_database(figure2, {"T2"})
        assert not is_possible_world(figure2, candidate)
        # {T1, T5} violates the TxIn key.
        candidate = world_database(figure2, {"T1", "T5"})
        assert not is_possible_world(figure2, candidate)

    def test_unknown_facts_rejected(self, figure2):
        candidate = figure2.current.copy()
        candidate.insert("TxOut", (99, 1, "Nobody", 1.0))
        assert not is_possible_world(figure2, candidate)

    def test_shrunk_state_rejected(self, figure2):
        from repro.relational.database import Database

        candidate = Database(figure2.current.schema)  # empty
        assert not is_possible_world(figure2, candidate)

    def test_current_state_is_a_world(self, figure2):
        assert is_possible_world(figure2, figure2.current.copy())


class TestGetMaximal:
    def test_figure2_clique_t2345(self, figure2):
        # Example 6: the clique {T2, T3, T4, T5} yields R ∪ {T3, T5}.
        ws = Workspace(figure2)
        world = get_maximal(ws, ["T2", "T3", "T4", "T5"])
        assert world == frozenset({"T3", "T5"})

    def test_figure2_clique_t1234(self, figure2):
        # Example 6: the clique {T1, T2, T3, T4} yields everything.
        ws = Workspace(figure2)
        world = get_maximal(ws, ["T1", "T2", "T3", "T4"])
        assert world == frozenset({"T1", "T2", "T3", "T4"})

    def test_leaves_workspace_at_world(self, figure2):
        ws = Workspace(figure2)
        world = get_maximal(ws, ["T1", "T2"])
        assert ws.active == world

    def test_result_is_order_independent(self, figure2):
        ws = Workspace(figure2)
        forward = get_maximal(ws, ["T1", "T2", "T3", "T4"])
        backward = get_maximal(ws, ["T4", "T3", "T2", "T1"])
        assert forward == backward

    def test_start_seed_respected(self, figure2):
        ws = Workspace(figure2)
        world = get_maximal(ws, ["T2"], start=["T1"])
        assert world == frozenset({"T1", "T2"})

    def test_never_addable_excluded(self, simple_ind_db):
        ws = Workspace(simple_ind_db)
        world = get_maximal(ws, simple_ind_db.pending_ids)
        assert world == frozenset({"V1", "V2", "V3"})


class TestWorldDatabase:
    def test_materialization(self, figure2):
        world = world_database(figure2, {"T1"})
        assert world.contains_fact("TxOut", (4, 1, "U5Pk", 1.0))
        assert not world.contains_fact("TxOut", (5, 1, "U4Pk", 3.0))
        # The base is untouched.
        assert not figure2.current.contains_fact("TxOut", (4, 1, "U5Pk", 1.0))
