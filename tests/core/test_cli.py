"""The command-line interface."""

import json

import pytest

from repro import serialize
from repro.cli import main
from tests.conftest import figure2_database


@pytest.fixture
def figure2_file(tmp_path):
    path = tmp_path / "figure2.json"
    serialize.dump(figure2_database(), str(path))
    return str(path)


class TestGenerate:
    def test_generate_writes_database(self, tmp_path, capsys):
        out = str(tmp_path / "chain.json")
        code = main(
            ["generate", "--preset", "D100-S", "--out", out, "--seed", "5",
             "--contradictions", "3"]
        )
        assert code == 0
        payload = json.loads(open(out).read())
        assert payload["version"] == 1
        assert "TxOut" in payload["schema"]
        assert capsys.readouterr().out.startswith("wrote")

    def test_unknown_preset(self, tmp_path, capsys):
        code = main(["generate", "--preset", "D9", "--out", str(tmp_path / "x")])
        assert code == 2
        assert "unknown preset" in capsys.readouterr().err


class TestStats:
    def test_stats_output(self, figure2_file, capsys):
        assert main(["stats", figure2_file]) == 0
        out = capsys.readouterr().out
        assert "TxOut: 6 committed tuples" in out
        assert "2 FDs, 2 INDs" in out
        assert "pending transactions: 5" in out
        assert "1 conflict pairs" in out


class TestCheck:
    def test_satisfied_exits_zero(self, figure2_file, capsys):
        code = main(
            ["check", figure2_file, "--query", "q() <- TxOut(t, s, 'NoPk', a)"]
        )
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_violated_exits_one(self, figure2_file, capsys):
        code = main(
            ["check", figure2_file, "--query", "q() <- TxOut(t, s, 'U8Pk', a)"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "T4" in out

    def test_algorithm_and_backend_flags(self, figure2_file):
        code = main(
            [
                "check", figure2_file,
                "--query", "q() <- TxOut(t, s, 'U8Pk', a)",
                "--algorithm", "naive", "--backend", "sqlite",
                "--no-short-circuit",
            ]
        )
        assert code == 1

    def test_aggregate_with_vouching(self, figure2_file):
        code = main(
            [
                "check", figure2_file,
                "--query", "[q(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 6",
                "--assume-nonnegative-sums",
            ]
        )
        assert code == 0  # satisfied: T4 and T5 cannot coexist

    def test_bad_query_reports_error(self, figure2_file, capsys):
        code = main(["check", figure2_file, "--query", "not a query"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_explain_flag(self, figure2_file, capsys):
        code = main(
            [
                "check", figure2_file,
                "--query", "q() <- TxOut(t, s, 'U8Pk', a)",
                "--explain",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "witness world" in out
        assert "assignment" in out
        assert "[T4]" in out


class TestWorlds:
    def test_enumerates_figure2(self, figure2_file, capsys):
        assert main(["worlds", figure2_file]) == 0
        out = capsys.readouterr().out
        assert "9 possible worlds" in out
        assert "T1 + T2 + T3 + T4" in out

    def test_limit(self, figure2_file, capsys):
        code = main(["worlds", figure2_file, "--limit", "2"])
        assert code == 3
        assert "stopped" in capsys.readouterr().err
