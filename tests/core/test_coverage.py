"""The Covers(R, T', q) constant-coverage test."""

from repro.core.coverage import covers, covers_query
from repro.core.workspace import Workspace
from repro.query.analysis import constant_patterns
from repro.query.parser import parse_query


def test_paper_example_t4_covers_u8(figure2):
    # "(R, {T4}) covers all constants in qs() <- TxOut(t, s, 'U8Pk', a)."
    ws = Workspace(figure2)
    q = parse_query("q() <- TxOut(t, s, 'U8Pk', a)")
    assert covers_query(ws, {"T4"}, q)
    assert not covers_query(ws, {"T1", "T2"}, q)


def test_constants_covered_by_current_state(figure2):
    ws = Workspace(figure2)
    q = parse_query("q() <- TxOut(t, s, 'U3Pk', a)")  # in R
    assert covers_query(ws, set(), q)
    assert covers_query(ws, {"T1"}, q)


def test_uncoverable_constants(figure2):
    ws = Workspace(figure2)
    q = parse_query("q() <- TxOut(t, s, 'MartianPk', a)")
    assert not covers_query(ws, set(figure2.pending_ids), q)


def test_multiple_patterns_all_required(figure2):
    ws = Workspace(figure2)
    q = parse_query("q() <- TxOut(t, s, 'U8Pk', a), TxOut(t2, s2, 'U5Pk', a2)")
    # U8Pk needs T4, U5Pk needs T1.
    assert covers_query(ws, {"T1", "T4"}, q)
    assert not covers_query(ws, {"T4"}, q)
    assert not covers_query(ws, {"T1"}, q)


def test_constant_free_query_always_covered(figure2):
    ws = Workspace(figure2)
    q = parse_query("q() <- TxOut(t, s, pk, a)")
    assert constant_patterns(q) == ()
    assert covers(ws, set(), ())
