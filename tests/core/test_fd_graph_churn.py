"""Randomized churn property: incremental maintenance ≡ fresh build.

A long-running monitor maintains its fd-transaction graph through
``add_transaction`` / ``remove_transaction`` / ``refresh_after_commit``
as the mempool churns.  This property test replays a generated trace of
issues, forgets and commits against both graph implementations and
asserts, at every step, that the incrementally-maintained state —
conflicts, nodes, never-appendable, and for the bitset graph the masks
and the clique stream — is identical to a graph freshly built from the
same database.  It also pins the interner's slot reuse: mask width is
bounded by the *peak* concurrent population, not total traffic.
"""

import random

import pytest

from repro.core.bitset import BitsetFdGraph
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.fd_graph import FdTransactionGraph
from repro.core.workspace import Workspace
from repro.relational.constraints import ConstraintSet, FunctionalDependency
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction

GRAPH_CLASSES = (FdTransactionGraph, BitsetFdGraph)


def empty_db() -> BlockchainDatabase:
    schema = make_schema({"R": ["k", "v"]})
    constraints = ConstraintSet(schema, [FunctionalDependency("R", ["k"], ["v"])])
    return BlockchainDatabase(
        Database.from_dict(schema, {"R": set()}), constraints, []
    )


def random_tx(rng: random.Random, tx_id: str) -> Transaction:
    facts = [
        (rng.randrange(6), rng.choice("abc"))
        for _ in range(rng.randrange(1, 3))
    ]
    return Transaction({"R": facts}, tx_id=tx_id)


def graph_state(graph: FdTransactionGraph) -> tuple:
    return (graph.nodes, graph.conflicts, graph.never_appendable)


def assert_matches_fresh(graph, workspace, graph_class):
    fresh = graph_class(workspace)
    assert graph_state(graph) == graph_state(fresh)
    assert graph._group_index == fresh._group_index
    if isinstance(graph, BitsetFdGraph):
        graph.verify_masks()
        assert list(graph.maximal_cliques()) == list(fresh.maximal_cliques())


@pytest.mark.parametrize("graph_class", GRAPH_CLASSES)
@pytest.mark.parametrize("seed", range(6))
def test_incremental_maintenance_matches_fresh_build(graph_class, seed):
    rng = random.Random(seed)
    workspace = Workspace(empty_db())
    graph = graph_class(workspace)
    live: list[str] = []
    peak = 0
    for step in range(40):
        roll = rng.random()
        if roll < 0.55 or not live:
            tx_id = f"T{step}"
            workspace.issue(random_tx(rng, tx_id))
            graph.add_transaction(tx_id)
            live.append(tx_id)
        elif roll < 0.85:
            tx_id = live.pop(rng.randrange(len(live)))
            workspace.forget(tx_id)
            graph.remove_transaction(tx_id)
        else:
            # Commit only an appendable transaction (a committed tx must
            # itself satisfy the constraints against the base).
            appendable = [t for t in live if t in graph.nodes]
            if not appendable:
                continue
            tx_id = appendable[rng.randrange(len(appendable))]
            live.remove(tx_id)
            workspace.commit(tx_id)
            graph.remove_transaction(tx_id)
            graph.refresh_after_commit()
            # Committing shrinks the appendable set for everyone.
            live = [t for t in live if t in workspace.db.pending_ids]
        peak = max(peak, len(graph.nodes))
        if step % 5 == 4:
            assert_matches_fresh(graph, workspace, graph_class)
    assert_matches_fresh(graph, workspace, graph_class)
    if isinstance(graph, BitsetFdGraph):
        # Slot reuse: width tracks the peak concurrent population.
        assert graph.interner.capacity <= peak


@pytest.mark.parametrize("graph_class", GRAPH_CLASSES)
def test_full_drain_resets_all_indexes(graph_class):
    rng = random.Random(99)
    workspace = Workspace(empty_db())
    graph = graph_class(workspace)
    ids = [f"T{i}" for i in range(12)]
    for tx_id in ids:
        workspace.issue(random_tx(rng, tx_id))
        graph.add_transaction(tx_id)
    for tx_id in ids:
        workspace.forget(tx_id)
        graph.remove_transaction(tx_id)
    assert graph.nodes == set()
    assert graph.conflicts == {}
    assert graph._group_index == {}
    if isinstance(graph, BitsetFdGraph):
        assert graph.nodes_mask == 0
        assert len(graph.interner) == 0
