"""The PTIME fragment solvers (Theorems 1–2)."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.errors import AlgorithmError
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


class TestFdOnlyConjunctive:
    def test_positive_query(self, simple_fd_db):
        checker = DCSatChecker(simple_fd_db)
        result = checker.check(
            "q() <- B(x, y), B(x2, y2), x != x2",
            algorithm="tractable", short_circuit=False,
        )
        assert not result.satisfied

    def test_conflict_makes_constraint_hold(self, simple_fd_db):
        # U1 (B(1,10)) and U2 (B(1,20)) clash: no world holds both values.
        checker = DCSatChecker(simple_fd_db)
        result = checker.check(
            "q() <- B(1, 10), B(1, 20)", algorithm="tractable",
            short_circuit=False,
        )
        assert result.satisfied

    def test_negation_minimal_world(self, simple_fd_db):
        # Some world contains B(1, 10) without B(2, 30): the minimal one.
        checker = DCSatChecker(simple_fd_db)
        result = checker.check(
            "q() <- B(1, 10), not B(2, 30)", algorithm="tractable",
        )
        assert not result.satisfied

    def test_negation_on_committed_fact_blocks(self, simple_fd_db):
        # B(9, 9) is committed: it is in every world, so requiring its
        # absence can never be met.
        checker = DCSatChecker(simple_fd_db)
        result = checker.check(
            "q() <- B(1, 10), not B(9, 9)", algorithm="tractable",
        )
        assert result.satisfied

    def test_negation_on_same_transaction_fact(self):
        # The support transaction itself drags the negated fact in.
        schema = make_schema({"B": ["x", "y"]})
        constraints = ConstraintSet(schema, [Key("B", ["x"], schema)])
        db = BlockchainDatabase(
            Database.from_dict(schema, {"B": []}),
            constraints,
            [Transaction({"B": [(1, 10), (2, 20)]}, tx_id="U1")],
        )
        checker = DCSatChecker(db)
        result = checker.check(
            "q() <- B(1, 10), not B(2, 20)", algorithm="tractable",
        )
        assert result.satisfied

    def test_agrees_with_brute_on_fixture(self, simple_fd_db):
        checker = DCSatChecker(simple_fd_db)
        queries = [
            "q() <- B(x, y), A(x)",
            "q() <- B(1, 10), B(2, 30)",
            "q() <- B(x, 10), not B(x, 20)",
            "q() <- B(x, y), not A(x)",
        ]
        for text in queries:
            tractable = checker.check(
                text, algorithm="tractable", short_circuit=False
            )
            brute = checker.check(text, algorithm="brute", short_circuit=False)
            assert tractable.satisfied == brute.satisfied, text

    def test_rejects_ind_databases(self, figure2):
        checker = DCSatChecker(figure2)
        with pytest.raises(AlgorithmError):
            checker.check(
                "q() <- TxOut(t, s, 'U8Pk', a)", algorithm="tractable",
                short_circuit=False,
            )


class TestIndOnlyConjunctive:
    def test_positive_query(self, simple_ind_db):
        checker = DCSatChecker(simple_ind_db)
        result = checker.check(
            "q() <- C(2, v)", algorithm="tractable", short_circuit=False
        )
        assert not result.satisfied  # V2 supplies P(2), V3 adds C(2, b)

    def test_unsupported_child_never_appears(self, simple_ind_db):
        checker = DCSatChecker(simple_ind_db)
        result = checker.check(
            "q() <- C(3, v)", algorithm="tractable", short_circuit=False
        )
        assert result.satisfied  # V4's parent P(3) exists nowhere

    def test_negation_removes_provider(self, simple_ind_db):
        # Want C(2, b) present but P(2)... P(2) only comes from V2, which
        # C(2, b) depends on: impossible.
        checker = DCSatChecker(simple_ind_db)
        result = checker.check(
            "q() <- C(2, v), not P(2)", algorithm="tractable"
        )
        assert result.satisfied

    def test_negation_satisfiable(self, simple_ind_db):
        # C(1, a) without P(2): drop V2 (and with it V3).
        checker = DCSatChecker(simple_ind_db)
        result = checker.check(
            "q() <- C(1, v), not P(2)", algorithm="tractable"
        )
        assert not result.satisfied

    def test_agrees_with_brute(self, simple_ind_db):
        checker = DCSatChecker(simple_ind_db)
        queries = [
            "q() <- C(x, v), P(x)",
            "q() <- C(2, v), not C(1, 'a')",
            "q() <- P(2), not C(2, 'b')",
        ]
        for text in queries:
            tractable = checker.check(
                text, algorithm="tractable", short_circuit=False
            )
            brute = checker.check(text, algorithm="brute", short_circuit=False)
            assert tractable.satisfied == brute.satisfied, text


class TestFdAggregates:
    @pytest.fixture
    def db(self):
        schema = make_schema({"Pay": ["pid", "who", "amount"]})
        constraints = ConstraintSet(schema, [Key("Pay", ["pid"], schema)])
        current = Database.from_dict(schema, {"Pay": [(0, "alice", 5)]})
        pending = [
            Transaction({"Pay": [(1, "alice", 10)]}, tx_id="W1"),
            Transaction({"Pay": [(1, "alice", 20)]}, tx_id="W2"),  # conflicts W1
            Transaction({"Pay": [(2, "alice", 1)]}, tx_id="W3"),
        ]
        return BlockchainDatabase(current, constraints, pending)

    def test_max_gt(self, db):
        checker = DCSatChecker(db)
        result = checker.check(
            "[q(max(a)) <- Pay(p, 'alice', a)] > 15", algorithm="tractable",
            short_circuit=False,
        )
        assert not result.satisfied  # W2 alone reaches 20
        result = checker.check(
            "[q(max(a)) <- Pay(p, 'alice', a)] > 20", algorithm="tractable",
            short_circuit=False,
        )
        assert result.satisfied

    def test_count_lt(self, db):
        checker = DCSatChecker(db)
        # The world {committed only} has exactly 1 row: count < 2 holds.
        result = checker.check(
            "[q(count()) <- Pay(p, 'alice', a)] < 2", algorithm="tractable",
        )
        assert not result.satisfied

    def test_sum_lt(self, db):
        checker = DCSatChecker(db)
        result = checker.check(
            "[q(sum(a)) <- Pay(p, 'alice', a)] < 6", algorithm="tractable",
        )
        assert not result.satisfied  # minimal world: just the committed 5
        result = checker.check(
            "[q(sum(a)) <- Pay(p, 'alice', a)] < 5", algorithm="tractable",
        )
        assert result.satisfied  # the committed row is in every world

    def test_hard_cases_rejected(self, db):
        checker = DCSatChecker(db)
        with pytest.raises(AlgorithmError):
            checker.check(
                "[q(sum(a)) <- Pay(p, 'alice', a)] > 100",
                algorithm="tractable", short_circuit=False,
            )

    def test_agrees_with_brute(self, db):
        checker = DCSatChecker(db)
        queries = [
            "[q(max(a)) <- Pay(p, 'alice', a)] > 9",
            "[q(max(a)) <- Pay(p, 'alice', a)] > 25",
            "[q(count()) <- Pay(p, w, a)] < 3",
            "[q(cntd(w)) <- Pay(p, w, a)] < 2",
        ]
        for text in queries:
            tractable = checker.check(
                text, algorithm="tractable", short_circuit=False
            )
            brute = checker.check(text, algorithm="brute", short_circuit=False)
            assert tractable.satisfied == brute.satisfied, text


class TestIndAggregates:
    def test_count_gt_at_maximal_world(self, simple_ind_db):
        checker = DCSatChecker(simple_ind_db)
        result = checker.check(
            "[q(count()) <- C(x, v)] > 1", algorithm="tractable",
            short_circuit=False,
        )
        assert not result.satisfied  # maximal world holds C(1,a), C(2,b)
        result = checker.check(
            "[q(count()) <- C(x, v)] > 2", algorithm="tractable",
            short_circuit=False,
        )
        assert result.satisfied

    def test_sum_requires_vouching(self, simple_ind_db):
        schema = simple_ind_db.current.schema
        checker = DCSatChecker(simple_ind_db)
        with pytest.raises(AlgorithmError):
            checker.check(
                "[q(sum(x)) <- C(x, v)] > 1", algorithm="tractable",
                short_circuit=False,
            )
        vouched = DCSatChecker(simple_ind_db, assume_nonnegative_sums=True)
        result = vouched.check(
            "[q(sum(x)) <- C(x, v)] > 1", algorithm="tractable",
            short_circuit=False,
        )
        assert not result.satisfied  # 1 + 2 = 3 > 1

    def test_lt_rejected(self, simple_ind_db):
        checker = DCSatChecker(simple_ind_db)
        with pytest.raises(AlgorithmError):
            checker.check(
                "[q(count()) <- C(x, v)] = 2", algorithm="tractable",
                short_circuit=False,
            )
