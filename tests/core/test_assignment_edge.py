"""AssignDCSat edge cases: providers, guards, ind-support search."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.errors import AlgorithmError
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


def _mixed_db(pending) -> BlockchainDatabase:
    schema = make_schema({"P": ["k"], "C": ["k", "v"]})
    constraints = ConstraintSet(
        schema,
        [
            Key("C", ["k"], schema),
            InclusionDependency("C", ["k"], "P", ["k"]),
        ],
    )
    return BlockchainDatabase(
        Database.from_dict(schema, {"P": [(0,)], "C": []}),
        constraints,
        pending,
    )


class TestProviders:
    def test_multiple_providers_one_conflicted(self):
        """The same fact offered by two txs; one provider is conflicted
        out — the solver must find the other."""
        pending = [
            # Both insert C(0, 'x'); blocker conflicts with prov1 only.
            Transaction({"C": [(0, "x")], "P": [(1,)]}, tx_id="prov1"),
            Transaction({"C": [(0, "x")]}, tx_id="prov2"),
            Transaction({"C": [(1, "y")], "P": [(1,)]}, tx_id="blocker"),
        ]
        # Make prov1 conflict with blocker via the C-key on k=... they
        # don't conflict as written; craft: prov1 also claims C(1, 'z').
        pending[0] = Transaction(
            {"C": [(0, "x"), (1, "z")], "P": [(1,)]}, tx_id="prov1"
        )
        db = _mixed_db(pending)
        checker = DCSatChecker(db)
        # Want C(0,'x') together with C(1,'y'): prov1 clashes with
        # blocker on C-key k=1, so the support must use prov2.
        result = checker.check(
            "q() <- C(0, 'x'), C(1, 'y')", algorithm="assign",
        )
        assert not result.satisfied
        assert "prov2" in result.witness
        assert "blocker" in result.witness

    def test_provider_combination_guard(self):
        from repro.core import assignment

        many = [
            Transaction({"C": [(0, "x")], "P": [(k,)]}, tx_id=f"p{k}")
            for k in range(1, 9)
        ]
        db = _mixed_db(many)
        checker = DCSatChecker(db)
        old_limit = assignment.MAX_PROVIDER_COMBINATIONS
        assignment.MAX_PROVIDER_COMBINATIONS = 4
        try:
            with pytest.raises(AlgorithmError):
                checker.check(
                    "q() <- C(0, 'x')", algorithm="assign",
                    short_circuit=False,
                )
        finally:
            assignment.MAX_PROVIDER_COMBINATIONS = old_limit

    def test_fact_only_in_base_needs_no_support(self):
        db = _mixed_db([Transaction({"P": [(5,)]}, tx_id="other")])
        db.current.insert("C", (0, "base"))
        checker = DCSatChecker(db)
        result = checker.check("q() <- C(0, 'base')", algorithm="assign")
        assert not result.satisfied
        assert result.witness == frozenset()


class TestIndSupport:
    def test_support_pulls_parent_from_component(self):
        pending = [
            Transaction({"P": [(7,)]}, tx_id="parent"),
            Transaction({"C": [(7, "v")]}, tx_id="child"),
        ]
        db = _mixed_db(pending)
        checker = DCSatChecker(db)
        result = checker.check("q() <- C(7, v)", algorithm="assign")
        assert not result.satisfied
        assert {"parent", "child"} <= result.witness

    def test_unsupportable_fact_is_safe(self):
        pending = [Transaction({"C": [(9, "v")]}, tx_id="orphan")]
        db = _mixed_db(pending)
        checker = DCSatChecker(db)
        result = checker.check(
            "q() <- C(9, v)", algorithm="assign", short_circuit=False
        )
        assert result.satisfied

    def test_conflicting_parents_explored(self):
        """Two alternative parents that conflict with each other: either
        one can support the child, and the solver must find a clique
        containing one of them."""
        pending = [
            # Each parent is self-supported (brings P(8) for its own
            # C(8, ·) fact); the two clash on the C-key at k=8.
            Transaction({"P": [(3,), (8,)], "C": [(8, "a")]}, tx_id="parentA"),
            Transaction({"P": [(3,), (8,)], "C": [(8, "b")]}, tx_id="parentB"),
            Transaction({"C": [(3, "v")]}, tx_id="child"),
        ]
        db = _mixed_db(pending)
        checker = DCSatChecker(db)
        result = checker.check("q() <- C(3, v)", algorithm="assign")
        assert not result.satisfied
        assert "child" in result.witness
        assert {"parentA", "parentB"} & result.witness
        assert not {"parentA", "parentB"} <= result.witness


class TestAgreementOnTheseShapes:
    def test_assign_matches_brute_here(self):
        shapes = [
            [Transaction({"P": [(7,)]}, tx_id="parent"),
             Transaction({"C": [(7, "v")]}, tx_id="child")],
            [Transaction({"P": [(3,), (8,)], "C": [(8, "a")]}, tx_id="pa"),
             Transaction({"P": [(3,), (8,)], "C": [(8, "b")]}, tx_id="pb"),
             Transaction({"C": [(3, "v")]}, tx_id="ch")],
        ]
        queries = ["q() <- C(k, v), P(k)", "q() <- C(3, v)", "q() <- C(8, 'a')"]
        for pending in shapes:
            db = _mixed_db(pending)
            checker = DCSatChecker(db)
            for text in queries:
                assign = checker.check(
                    text, algorithm="assign", short_circuit=False
                )
                brute = checker.check(
                    text, algorithm="brute", short_circuit=False
                )
                assert assign.satisfied == brute.satisfied, text
