"""The standing constraint monitor: caching and targeted invalidation."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor, coupled_relations
from repro.errors import ReproError
from repro.relational.constraints import (
    ConstraintSet,
    InclusionDependency,
    Key,
)
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction

QS_U8 = "q() <- TxOut(t, s, 'U8Pk', a)"
QS_NONE = "q() <- TxOut(t, s, 'NobodyPk', a)"


@pytest.fixture
def monitor(figure2):
    return ConstraintMonitor(DCSatChecker(figure2))


class TestRegistration:
    def test_register_and_names(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register("nobody", QS_NONE, algorithm="naive")
        assert monitor.names == ("u8", "nobody")
        assert monitor.entry("u8").relations == frozenset({"TxOut"})

    def test_duplicate_rejected(self, monitor):
        monitor.register("u8", QS_U8)
        with pytest.raises(ReproError):
            monitor.register("u8", QS_NONE)

    def test_unregister(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.unregister("u8")
        assert monitor.names == ()
        with pytest.raises(ReproError):
            monitor.unregister("u8")

    def test_unknown_entry(self, monitor):
        with pytest.raises(ReproError):
            monitor.status("ghost")


class TestCaching:
    def test_status_cached(self, monitor):
        monitor.register("u8", QS_U8)
        first = monitor.status("u8")
        second = monitor.status("u8")
        assert first is second
        entry = monitor.entry("u8")
        assert entry.checks_run == 1
        assert entry.cache_hits == 1

    def test_status_all_and_violated(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register("nobody", QS_NONE)
        verdicts = monitor.status_all()
        assert not verdicts["u8"].satisfied
        assert verdicts["nobody"].satisfied
        assert set(monitor.violated()) == {"u8"}


class TestBatchedStatus:
    def test_status_all_uses_one_batch(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register("nobody", QS_NONE)
        monitor.register("u3", "q() <- TxOut(t, s, 'U3Pk', a)")
        verdicts = monitor.status_all()
        assert not verdicts["u8"].satisfied
        assert verdicts["nobody"].satisfied
        assert not verdicts["u3"].satisfied
        assert all(
            monitor.entry(name).checks_run == 1 for name in monitor.names
        )
        # Batched entries carry the batch algorithm label.
        assert monitor.entry("u8").result.stats.algorithm == "batch-naive"

    def test_non_monotone_entries_fall_back(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register(
            "neg",
            "q() <- TxOut(t, s, 'U8Pk', a), not TxIn(t, s, 'U8Pk', a, t, 'x')",
        )
        verdicts = monitor.status_all()
        assert "neg" in verdicts
        assert monitor.entry("neg").result.stats.algorithm == "brute"

    def test_batch_disabled(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register("nobody", QS_NONE)
        verdicts = monitor.status_all(batch=False)
        assert monitor.entry("u8").result.stats.algorithm != "batch-naive"
        assert not verdicts["u8"].satisfied


class TestSubsumption:
    def test_subsumed_constraint_answered_for_free(self, monitor):
        # The broad constraint (any MartianPk output) is satisfied; the
        # narrow one (a specific MartianPk row) is subsumed by it.
        monitor.register("broad", "q() <- TxOut(t, s, 'MartianPk', a)")
        monitor.register("narrow", "q() <- TxOut(t, 1, 'MartianPk', 7.0)")
        assert monitor.status("broad").satisfied
        narrow = monitor.status("narrow")
        assert narrow.satisfied
        assert narrow.stats.algorithm == "subsumed-by:broad"
        assert monitor.entry("narrow").checks_run == 0  # no solver run

    def test_violated_constraints_never_subsume(self, monitor):
        monitor.register("broad", "q() <- TxOut(t, s, 'U7Pk', a)")
        monitor.register("narrow", "q() <- TxOut(t, s, 'U7Pk', 4.0)")
        assert not monitor.status("broad").satisfied
        # Violated verdicts promise nothing; the narrow one is checked.
        narrow = monitor.status("narrow")
        assert not narrow.satisfied
        assert monitor.entry("narrow").checks_run == 1

    def test_subsumption_can_be_disabled(self, monitor):
        monitor.register("broad", "q() <- TxOut(t, s, 'MartianPk', a)")
        monitor.register("narrow", "q() <- TxOut(t, 1, 'MartianPk', 7.0)")
        monitor.status("broad")
        narrow = monitor.status("narrow", use_subsumption=False)
        assert narrow.satisfied
        assert monitor.entry("narrow").checks_run == 1

    def test_non_positive_queries_excluded(self, monitor):
        monitor.register("broad", "q() <- TxOut(t, s, 'MartianPk', a)")
        monitor.status("broad")
        monitor.register(
            "negated",
            "q() <- TxOut(t, 1, 'MartianPk', 7.0), "
            "not TxIn(t, 1, 'MartianPk', 7.0, t, 'x')",
        )
        result = monitor.status("negated")
        assert result.satisfied
        assert monitor.entry("negated").checks_run == 1  # really checked


class TestCoupledRelations:
    def test_ind_closure_is_connectivity(self):
        schema = make_schema({"A": ["x"], "B": ["x"], "C": ["x"]})
        constraints = ConstraintSet(
            schema, [InclusionDependency("A", ["x"], "B", ["x"])]
        )
        assert constraints.ind_closure({"A"}) == {"A", "B"}
        assert constraints.ind_closure({"B"}) == {"A", "B"}
        assert constraints.ind_closure({"C"}) == {"C"}
        assert constraints.ind_closure([]) == frozenset()

    def test_co_write_and_ind_edges_interleave(self):
        # Seed {A}; a pending tx co-writes {A, B}; an ind couples B to C.
        # The fixpoint must walk both edge kinds: A -> B (co-write) ->
        # C (ind).
        schema = make_schema({"A": ["x"], "B": ["x"], "C": ["x"], "D": ["x"]})
        constraints = ConstraintSet(
            schema, [InclusionDependency("B", ["x"], "C", ["x"])]
        )
        out = coupled_relations({"A"}, constraints, [{"A", "B"}])
        assert out == {"A", "B", "C"}
        # Single-relation footprints never bridge anything.
        assert coupled_relations({"D"}, constraints, [{"A"}, {"D"}]) == {"D"}


class TestInvalidation:
    def test_issue_invalidates_touching_constraints(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.status("u8")
        tx = Transaction({"TxOut": [(9, 1, "ZPk", 1.0)]}, tx_id="T9")
        invalidated = monitor.issue(tx)
        assert invalidated == ["u8"]
        assert monitor.entry("u8").result is None

    def test_commit_changes_cached_verdict(self, monitor):
        monitor.register("u8", QS_U8)
        assert not monitor.status("u8").satisfied
        monitor.commit("T5")  # kills T1 -> T2 -> T4, so U8Pk unreachable
        fresh = monitor.status("u8")
        assert fresh.satisfied
        assert monitor.entry("u8").checks_run == 2

    def test_forget_invalidates(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.status("u8")
        monitor.forget("T4")
        assert monitor.status("u8").satisfied

    def test_absorb_invalidates_touching_constraints(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register("ghost", "q() <- TxIn(p, s, 'GhostPk', a, n, g)")
        monitor.status_all()
        coinbase = Transaction({"TxOut": [(99, 1, "MinerPk", 50.0)]}, tx_id="CB")
        invalidated = monitor.absorb(coinbase)
        # TxOut and TxIn are ind-coupled in the Example 1 schema, so the
        # absorbed coinbase reaches both cached verdicts.
        assert sorted(invalidated) == ["ghost", "u8"]
        assert monitor.entry("u8").result is None
        # The facts really landed: a constraint over the new row violates.
        monitor.register("miner", "q() <- TxOut(99, 1, 'MinerPk', 50.0)")
        assert not monitor.status("miner").satisfied

    def test_untouched_constraints_stay_cached(self):
        # A constraint over a relation the update cannot reach — no ind
        # couples R and S, and no pending transaction co-writes both —
        # keeps its cached verdict.
        schema = make_schema({"R": ["x"], "S": ["y"]})
        db = BlockchainDatabase(
            Database.from_dict(schema, {"R": [], "S": []}),
            ConstraintSet(schema),
        )
        monitor = ConstraintMonitor(DCSatChecker(db))
        monitor.register("s_only", "q() <- S('boom')")
        monitor.status("s_only")
        invalidated = monitor.issue(
            Transaction({"R": [(1,)]}, tx_id="T-R")
        )
        assert invalidated == []
        assert monitor.entry("s_only").result is not None

    def test_commit_flips_ind_coupled_verdict(self):
        """Regression: a commit into ``Parent`` flips the verdict of a
        constraint over ind-dependent ``Child``.

        The old ``_invalidate_touching`` intersected raw relation
        footprints ({Parent} ∩ {Child} = ∅) and served the stale
        "violated" verdict from cache.
        """
        schema = make_schema(
            {"Parent": ["pid", "tag"], "Child": ["cid", "pid", "tag"]}
        )
        constraints = ConstraintSet(
            schema,
            [
                Key("Parent", ["pid"], schema),
                InclusionDependency(
                    "Child", ["pid", "tag"], "Parent", ["pid", "tag"]
                ),
            ],
        )
        db = BlockchainDatabase(
            Database.from_dict(schema, {"Parent": [(2, "z")], "Child": []}),
            constraints,
            [
                Transaction({"Parent": [(1, "x")]}, tx_id="TP"),
                Transaction({"Parent": [(1, "y")]}, tx_id="TQ"),
                Transaction({"Child": [(10, 1, "x")]}, tx_id="TC"),
            ],
        )
        monitor = ConstraintMonitor(DCSatChecker(db))
        monitor.register("no-child", "q() <- Child(c, p, t)")
        # TC is appendable once TP supplies Parent(1, 'x'): the world
        # {TP, TC} contains a Child fact, so the constraint is violable.
        assert not monitor.status("no-child").satisfied

        # Committing TQ writes Parent(1, 'y'); the key on pid makes TP
        # never-appendable, and with it TC loses its only parent row.
        invalidated = monitor.commit("TQ")
        assert invalidated == ["no-child"]
        fresh = monitor.status("no-child")
        assert fresh.satisfied
        assert monitor.entry("no-child").checks_run == 2

    def test_commit_flips_co_written_verdict(self):
        """A pending transaction spanning two relations couples them even
        without inclusion dependencies: committing a conflicting ``B``
        row kills the spanning transaction, and its ``A`` facts vanish
        from every possible world."""
        schema = make_schema({"A": ["x"], "B": ["k", "v"]})
        constraints = ConstraintSet(schema, [Key("B", ["k"], schema)])
        db = BlockchainDatabase(
            Database.from_dict(schema, {"A": [], "B": []}),
            constraints,
            [
                Transaction({"A": [(1,)], "B": [(1, "x")]}, tx_id="T-SPAN"),
                Transaction({"B": [(1, "y")]}, tx_id="T-B"),
            ],
        )
        monitor = ConstraintMonitor(DCSatChecker(db))
        monitor.register("no-a", "q() <- A(x)")
        assert not monitor.status("no-a").satisfied
        invalidated = monitor.commit("T-B")
        assert invalidated == ["no-a"]
        assert monitor.status("no-a").satisfied

    def test_ind_coupled_relations_invalidate_together(self, monitor):
        # TxIn ⊆ TxOut in the Example 1 schema: a TxOut-only change can
        # alter which TxIn transactions are appendable, so a TxIn-only
        # constraint must not keep its cached verdict.
        monitor.register("txin_only", "q() <- TxIn(p, s, 'GhostPk', a, n, g)")
        monitor.status("txin_only")
        tx = Transaction({"TxOut": [(9, 1, "ZPk", 1.0)]}, tx_id="T9")
        assert monitor.issue(tx) == ["txin_only"]
        assert monitor.entry("txin_only").result is None
