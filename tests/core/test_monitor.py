"""The standing constraint monitor: caching and targeted invalidation."""

import pytest

from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.errors import ReproError
from repro.relational.transaction import Transaction

QS_U8 = "q() <- TxOut(t, s, 'U8Pk', a)"
QS_NONE = "q() <- TxOut(t, s, 'NobodyPk', a)"


@pytest.fixture
def monitor(figure2):
    return ConstraintMonitor(DCSatChecker(figure2))


class TestRegistration:
    def test_register_and_names(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register("nobody", QS_NONE, algorithm="naive")
        assert monitor.names == ("u8", "nobody")
        assert monitor.entry("u8").relations == frozenset({"TxOut"})

    def test_duplicate_rejected(self, monitor):
        monitor.register("u8", QS_U8)
        with pytest.raises(ReproError):
            monitor.register("u8", QS_NONE)

    def test_unregister(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.unregister("u8")
        assert monitor.names == ()
        with pytest.raises(ReproError):
            monitor.unregister("u8")

    def test_unknown_entry(self, monitor):
        with pytest.raises(ReproError):
            monitor.status("ghost")


class TestCaching:
    def test_status_cached(self, monitor):
        monitor.register("u8", QS_U8)
        first = monitor.status("u8")
        second = monitor.status("u8")
        assert first is second
        entry = monitor.entry("u8")
        assert entry.checks_run == 1
        assert entry.cache_hits == 1

    def test_status_all_and_violated(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register("nobody", QS_NONE)
        verdicts = monitor.status_all()
        assert not verdicts["u8"].satisfied
        assert verdicts["nobody"].satisfied
        assert set(monitor.violated()) == {"u8"}


class TestBatchedStatus:
    def test_status_all_uses_one_batch(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register("nobody", QS_NONE)
        monitor.register("u3", "q() <- TxOut(t, s, 'U3Pk', a)")
        verdicts = monitor.status_all()
        assert not verdicts["u8"].satisfied
        assert verdicts["nobody"].satisfied
        assert not verdicts["u3"].satisfied
        assert all(
            monitor.entry(name).checks_run == 1 for name in monitor.names
        )
        # Batched entries carry the batch algorithm label.
        assert monitor.entry("u8").result.stats.algorithm == "batch-naive"

    def test_non_monotone_entries_fall_back(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register(
            "neg",
            "q() <- TxOut(t, s, 'U8Pk', a), not TxIn(t, s, 'U8Pk', a, t, 'x')",
        )
        verdicts = monitor.status_all()
        assert "neg" in verdicts
        assert monitor.entry("neg").result.stats.algorithm == "brute"

    def test_batch_disabled(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.register("nobody", QS_NONE)
        verdicts = monitor.status_all(batch=False)
        assert monitor.entry("u8").result.stats.algorithm != "batch-naive"
        assert not verdicts["u8"].satisfied


class TestSubsumption:
    def test_subsumed_constraint_answered_for_free(self, monitor):
        # The broad constraint (any MartianPk output) is satisfied; the
        # narrow one (a specific MartianPk row) is subsumed by it.
        monitor.register("broad", "q() <- TxOut(t, s, 'MartianPk', a)")
        monitor.register("narrow", "q() <- TxOut(t, 1, 'MartianPk', 7.0)")
        assert monitor.status("broad").satisfied
        narrow = monitor.status("narrow")
        assert narrow.satisfied
        assert narrow.stats.algorithm == "subsumed-by:broad"
        assert monitor.entry("narrow").checks_run == 0  # no solver run

    def test_violated_constraints_never_subsume(self, monitor):
        monitor.register("broad", "q() <- TxOut(t, s, 'U7Pk', a)")
        monitor.register("narrow", "q() <- TxOut(t, s, 'U7Pk', 4.0)")
        assert not monitor.status("broad").satisfied
        # Violated verdicts promise nothing; the narrow one is checked.
        narrow = monitor.status("narrow")
        assert not narrow.satisfied
        assert monitor.entry("narrow").checks_run == 1

    def test_subsumption_can_be_disabled(self, monitor):
        monitor.register("broad", "q() <- TxOut(t, s, 'MartianPk', a)")
        monitor.register("narrow", "q() <- TxOut(t, 1, 'MartianPk', 7.0)")
        monitor.status("broad")
        narrow = monitor.status("narrow", use_subsumption=False)
        assert narrow.satisfied
        assert monitor.entry("narrow").checks_run == 1

    def test_non_positive_queries_excluded(self, monitor):
        monitor.register("broad", "q() <- TxOut(t, s, 'MartianPk', a)")
        monitor.status("broad")
        monitor.register(
            "negated",
            "q() <- TxOut(t, 1, 'MartianPk', 7.0), "
            "not TxIn(t, 1, 'MartianPk', 7.0, t, 'x')",
        )
        result = monitor.status("negated")
        assert result.satisfied
        assert monitor.entry("negated").checks_run == 1  # really checked


class TestInvalidation:
    def test_issue_invalidates_touching_constraints(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.status("u8")
        tx = Transaction({"TxOut": [(9, 1, "ZPk", 1.0)]}, tx_id="T9")
        invalidated = monitor.issue(tx)
        assert invalidated == ["u8"]
        assert monitor.entry("u8").result is None

    def test_commit_changes_cached_verdict(self, monitor):
        monitor.register("u8", QS_U8)
        assert not monitor.status("u8").satisfied
        monitor.commit("T5")  # kills T1 -> T2 -> T4, so U8Pk unreachable
        fresh = monitor.status("u8")
        assert fresh.satisfied
        assert monitor.entry("u8").checks_run == 2

    def test_forget_invalidates(self, monitor):
        monitor.register("u8", QS_U8)
        monitor.status("u8")
        monitor.forget("T4")
        assert monitor.status("u8").satisfied

    def test_untouched_constraints_stay_cached(self, figure2):
        # Register a constraint over a relation the update never touches.
        figure2.current.schema  # (schema already contains both relations)
        checker = DCSatChecker(figure2)
        monitor = ConstraintMonitor(checker)
        monitor.register("txin_only", "q() <- TxIn(p, s, 'GhostPk', a, n, g)")
        monitor.status("txin_only")
        tx = Transaction({"TxOut": [(9, 1, "ZPk", 1.0)]}, tx_id="T9")
        invalidated = monitor.issue(tx)
        assert invalidated == []
        assert monitor.entry("txin_only").result is not None
