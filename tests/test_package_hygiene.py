"""Package hygiene: exports resolve, errors form a hierarchy, reprs work.

Cheap but real guarantees for a library release: ``__all__`` names must
exist, every custom exception must derive from :class:`ReproError`, and
the repr/str of the core objects must not raise (they appear in logs and
assertion messages everywhere).
"""

import importlib
import inspect

import pytest

import repro
import repro.core
import repro.errors
from repro import errors


PACKAGES = [
    "repro",
    "repro.core",
    "repro.query",
    "repro.relational",
    "repro.bitcoin",
    "repro.graphs",
    "repro.storage",
    "repro.workloads",
    "repro.reductions",
    "repro.likelihood",
    "repro.obs",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_exception_hierarchy():
    for name, obj in vars(errors).items():
        if inspect.isclass(obj) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name


def test_integrity_violation_carries_witnesses():
    error = errors.IntegrityViolationError("boom", violations=["v1"])
    assert error.violations == ["v1"]
    assert errors.IntegrityViolationError("boom").violations == []


def test_parse_error_position():
    assert errors.ParseError("bad", position=7).position == 7


def test_core_reprs(figure2):
    from repro.core.checker import DCSatChecker
    from repro.core.fd_graph import FdTransactionGraph
    from repro.core.ind_graph import IndQTransactionGraph
    from repro.core.workspace import Workspace

    checker = DCSatChecker(figure2)
    for obj in (
        figure2,
        figure2.current,
        figure2.pending[0],
        checker,
        checker.workspace,
        checker.fd_graph,
        checker.ind_graph,
        checker.check("q() <- TxOut(t, s, 'U8Pk', a)"),
    ):
        assert repr(obj)


def test_constraint_strs(figure2):
    for constraint in figure2.constraints:
        assert str(constraint)


def test_violation_str():
    from repro.relational.checking import find_violations
    from repro.relational.constraints import ConstraintSet, Key
    from repro.relational.database import Database, make_schema

    schema = make_schema({"R": ["a", "b"]})
    cs = ConstraintSet(schema, [Key("R", ["a"], schema)])
    db = Database.from_dict(schema, {"R": [(1, "x"), (1, "y")]})
    violations = find_violations(db, cs)
    assert "violation of" in str(violations[0])


def test_version_marker():
    assert repro.__version__ == "1.0.0"
