"""The SAT → DCSat hardness gadget, checked against a SAT oracle."""

import itertools

import pytest

from repro.core.checker import DCSatChecker
from repro.errors import ReproError
from repro.reductions import (
    CnfFormula,
    brute_force_satisfiable,
    reduction_from_cnf,
)


def _check(formula: CnfFormula, algorithm: str = "auto") -> bool:
    db, query = reduction_from_cnf(formula)
    return DCSatChecker(db).check(query, algorithm=algorithm).satisfied


class TestKnownFormulas:
    def test_satisfiable_single_clause(self):
        f = CnfFormula((((1, True),),))
        assert brute_force_satisfiable(f)
        assert not _check(f)  # satisfiable -> constraint violated

    def test_unsatisfiable_pair(self):
        f = CnfFormula((((1, True),), ((1, False),)))
        assert not brute_force_satisfiable(f)
        assert _check(f)

    def test_three_clause_unsat(self):
        # (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2)
        f = CnfFormula(
            (((1, True), (2, True)), ((1, False), (2, True)), ((2, False),))
        )
        assert not brute_force_satisfiable(f)
        assert _check(f)

    def test_three_clause_sat(self):
        # (x1 ∨ x2) ∧ (¬x1 ∨ x2): x2 = true works.
        f = CnfFormula((((1, True), (2, True)), ((1, False), (2, True))))
        assert brute_force_satisfiable(f)
        assert not _check(f)

    def test_empty_clause_rejected(self):
        with pytest.raises(ReproError):
            CnfFormula(((),))


class TestExhaustiveSmallFormulas:
    def test_all_two_variable_two_clause_formulas(self):
        """Every 2-clause formula over {x1, x2} with 2-literal clauses:
        the reduction must agree with the SAT oracle on all of them."""
        literals = [(1, True), (1, False), (2, True), (2, False)]
        clauses = list(itertools.combinations(literals, 2))
        for c1, c2 in itertools.combinations(clauses, 2):
            f = CnfFormula((c1, c2))
            expected_satisfied = not brute_force_satisfiable(f)
            assert _check(f) is expected_satisfied, f

    @pytest.mark.parametrize("algorithm", ["naive", "opt", "assign", "brute"])
    def test_algorithms_agree_on_gadget(self, algorithm):
        f = CnfFormula(
            (((1, True), (2, False)), ((2, True), (3, False)), ((3, True),))
        )
        db, query = reduction_from_cnf(f)
        result = DCSatChecker(db).check(query, algorithm=algorithm)
        assert result.satisfied == (not brute_force_satisfiable(f))


class TestGadgetStructure:
    def test_assignment_key_prevents_both_polarities(self):
        from repro.core.possible_worlds import enumerate_possible_worlds

        f = CnfFormula((((1, True), (1, False)),))  # tautological clause
        db, _ = reduction_from_cnf(f)
        for world in enumerate_possible_worlds(db):
            assert not {"x1=t", "x1=f"} <= world

    def test_collector_requires_all_clauses(self):
        from repro.core.possible_worlds import enumerate_possible_worlds

        f = CnfFormula((((1, True),), ((2, True),)))
        db, _ = reduction_from_cnf(f)
        for world in enumerate_possible_worlds(db):
            if "collector" in world:
                assert {"x1=t", "x2=t"} <= world

    def test_variable_indices_arbitrary(self):
        f = CnfFormula((((17, True), (42, False)),))
        assert f.variables == (17, 42)
        assert not _check(f)
