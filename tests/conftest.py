"""Shared fixtures: the paper's running example and small helpers.

The ``figure2`` fixture reproduces the blockchain database of Figure 2 /
Example 2 tuple-for-tuple: the simplified Bitcoin schema of Example 1,
the committed state ``R``, and the five pending transactions T1–T5 whose
possible worlds Example 3 enumerates.
"""

from __future__ import annotations

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.schema import Schema
from repro.relational.transaction import Transaction


def bitcoin_example_schema() -> Schema:
    return make_schema(
        {
            "TxOut": ["txId", "ser", "pk", "amount"],
            "TxIn": ["prevTxId", "prevSer", "pk", "amount", "newTxId", "sig"],
        }
    )


def bitcoin_example_constraints(schema: Schema) -> ConstraintSet:
    return ConstraintSet(
        schema,
        [
            Key("TxOut", ["txId", "ser"], schema),
            Key("TxIn", ["prevTxId", "prevSer"], schema),
            InclusionDependency(
                "TxIn",
                ["prevTxId", "prevSer", "pk", "amount"],
                "TxOut",
                ["txId", "ser", "pk", "amount"],
            ),
            InclusionDependency("TxIn", ["newTxId"], "TxOut", ["txId"]),
        ],
    )


def figure2_transactions() -> list[Transaction]:
    return [
        Transaction(
            {
                "TxIn": [(2, 2, "U2Pk", 4.0, 4, "U2Sig")],
                "TxOut": [(4, 1, "U5Pk", 1.0), (4, 2, "U2Pk", 3.0)],
            },
            tx_id="T1",
        ),
        Transaction(
            {
                "TxIn": [(4, 2, "U2Pk", 3.0, 5, "U2Sig")],
                "TxOut": [(5, 1, "U4Pk", 3.0)],
            },
            tx_id="T2",
        ),
        Transaction(
            {
                "TxIn": [(3, 3, "U1Pk", 0.5, 6, "U1Sig")],
                "TxOut": [(6, 1, "U4Pk", 0.5)],
            },
            tx_id="T3",
        ),
        Transaction(
            {
                "TxIn": [
                    (6, 1, "U4Pk", 0.5, 7, "U4Sig"),
                    (5, 1, "U4Pk", 3.0, 7, "U4Sig"),
                ],
                "TxOut": [(7, 1, "U7Pk", 2.5), (7, 2, "U8Pk", 1.0)],
            },
            tx_id="T4",
        ),
        Transaction(
            {
                "TxIn": [(2, 2, "U2Pk", 4.0, 8, "U2Sig")],
                "TxOut": [(8, 1, "U7Pk", 4.0)],
            },
            tx_id="T5",
        ),
    ]


def figure2_database() -> BlockchainDatabase:
    schema = bitcoin_example_schema()
    constraints = bitcoin_example_constraints(schema)
    current = Database.from_dict(
        schema,
        {
            "TxOut": [
                (1, 1, "U1Pk", 1.0),
                (2, 1, "U1Pk", 1.0),
                (2, 2, "U2Pk", 4.0),
                (3, 1, "U3Pk", 1.0),
                (3, 2, "U4Pk", 0.5),
                (3, 3, "U1Pk", 0.5),
            ],
            "TxIn": [
                (1, 1, "U1Pk", 1.0, 3, "U1Sig"),
                (2, 1, "U1Pk", 1.0, 3, "U1Sig"),
            ],
        },
    )
    return BlockchainDatabase(current, constraints, figure2_transactions())


#: The nine possible worlds Example 3 lists, as included-transaction sets.
EXAMPLE3_WORLDS = [
    frozenset(),
    frozenset({"T1"}),
    frozenset({"T3"}),
    frozenset({"T1", "T3"}),
    frozenset({"T1", "T2"}),
    frozenset({"T1", "T2", "T3"}),
    frozenset({"T1", "T2", "T3", "T4"}),
    frozenset({"T5"}),
    frozenset({"T3", "T5"}),
]


@pytest.fixture
def figure2() -> BlockchainDatabase:
    return figure2_database()


@pytest.fixture
def simple_fd_db() -> BlockchainDatabase:
    """A minimal {key}-only database: two pending txs clash on B's key."""
    schema = make_schema({"A": ["x"], "B": ["x", "y"]})
    constraints = ConstraintSet(schema, [Key("B", ["x"], schema)])
    current = Database.from_dict(schema, {"A": [(1,), (2,)], "B": [(9, 9)]})
    pending = [
        Transaction({"B": [(1, 10)]}, tx_id="U1"),
        Transaction({"B": [(1, 20)]}, tx_id="U2"),
        Transaction({"B": [(2, 30)]}, tx_id="U3"),
    ]
    return BlockchainDatabase(current, constraints, pending)


@pytest.fixture
def simple_ind_db() -> BlockchainDatabase:
    """A minimal {ind}-only database: C depends on P via an inclusion."""
    schema = make_schema({"P": ["k"], "C": ["k", "v"]})
    constraints = ConstraintSet(
        schema, [InclusionDependency("C", ["k"], "P", ["k"])]
    )
    current = Database.from_dict(schema, {"P": [(1,)], "C": []})
    pending = [
        Transaction({"C": [(1, "a")]}, tx_id="V1"),  # parent already in R
        Transaction({"P": [(2,)]}, tx_id="V2"),
        Transaction({"C": [(2, "b")]}, tx_id="V3"),  # depends on V2
        Transaction({"C": [(3, "c")]}, tx_id="V4"),  # never satisfiable
    ]
    return BlockchainDatabase(current, constraints, pending)
