"""Evaluator edge cases: early exits, type mixing, pathological joins."""

import pytest

from repro.query.evaluator import evaluate, iter_assignments
from repro.query.parser import parse_query
from repro.relational.database import Database, make_schema


@pytest.fixture
def db() -> Database:
    schema = make_schema({"R": ["a", "b"], "S": ["x"], "Num": ["n"]})
    return Database.from_dict(
        schema,
        {
            "R": [(i, i + 1) for i in range(20)],
            "S": [(5,), (10,)],
            "Num": [(1,), (2,), (3,)],
        },
    )


class TestEarlyExit:
    def test_count_gt_short_circuits(self, db):
        # Threshold crossed after 6 assignments; correctness regardless.
        assert evaluate(parse_query("[q(count()) <- R(a, b)] > 5"), db)
        assert not evaluate(parse_query("[q(count()) <- R(a, b)] > 20"), db)

    def test_count_eq_requires_full_enumeration(self, db):
        assert evaluate(parse_query("[q(count()) <- R(a, b)] = 20"), db)
        assert not evaluate(parse_query("[q(count()) <- R(a, b)] = 19"), db)

    def test_count_lt_falsified_by_crossing(self, db):
        assert not evaluate(parse_query("[q(count()) <- R(a, b)] < 5"), db)
        assert evaluate(parse_query("[q(count()) <- R(a, b)] < 21"), db)

    def test_cntd_ne(self, db):
        assert evaluate(parse_query("[q(cntd(a)) <- R(a, b)] != 3"), db)
        assert not evaluate(parse_query("[q(cntd(a)) <- R(a, b)] != 20"), db)


class TestTypeMixing:
    def test_string_int_comparisons_false_not_error(self, db):
        schema = make_schema({"Mix": ["v"]})
        mixed = Database.from_dict(schema, {"Mix": [(1,), ("one",)]})
        assert not evaluate(parse_query("q() <- Mix(v), v < 'zzz', v > 0"), mixed)
        assert evaluate(parse_query("q() <- Mix(v), v > 0"), mixed)
        assert evaluate(parse_query("q() <- Mix(v), v != 'one'"), mixed)

    def test_int_float_equality(self, db):
        schema = make_schema({"Mix": ["v"]})
        mixed = Database.from_dict(schema, {"Mix": [(1,)]})
        assert evaluate(parse_query("q() <- Mix(1.0)"), mixed)


class TestJoins:
    def test_triangle(self, db):
        schema = make_schema({"E": ["u", "v"]})
        g = Database.from_dict(schema, {"E": [(1, 2), (2, 3), (3, 1), (3, 4)]})
        triangle = parse_query("q() <- E(x, y), E(y, z), E(z, x)")
        assert evaluate(triangle, g)
        g2 = Database.from_dict(schema, {"E": [(1, 2), (2, 3), (3, 4)]})
        assert not evaluate(triangle, g2)

    def test_cartesian_product_with_filter(self, db):
        q = parse_query("q() <- Num(x), Num(y), Num(z), x < y, y < z")
        assignments = list(iter_assignments(q, db))
        assert len(assignments) == 1
        assert assignments[0] == {"x": 1, "y": 2, "z": 3}

    def test_self_join_distinct(self, db):
        q = parse_query("q() <- S(x), S(y), x != y")
        assert len(list(iter_assignments(q, db))) == 2  # (5,10) and (10,5)

    def test_deep_chain(self, db):
        q = parse_query(
            "q() <- R(a, b), R(b, c), R(c, d), R(d, e), R(e, f), R(f, g)"
        )
        assert evaluate(q, db)  # 0->1->...->6 exists

    def test_bound_probe_beats_scan_semantically(self, db):
        # Same answers whichever atom the planner expands first.
        q1 = parse_query("q() <- R(a, b), S(a)")
        q2 = parse_query("q() <- S(a), R(a, b)")
        r1 = sorted(tuple(sorted(x.items())) for x in iter_assignments(q1, db))
        r2 = sorted(tuple(sorted(x.items())) for x in iter_assignments(q2, db))
        assert r1 == r2
        assert len(r1) == 2


class TestNegationDetails:
    def test_negated_atom_with_all_constants(self, db):
        assert evaluate(parse_query("q() <- S(x), not S(99)"), db)
        assert not evaluate(parse_query("q() <- S(x), not S(5)"), db)

    def test_negation_checked_per_assignment(self, db):
        # x in S but x+? pattern: Num values not in S.
        q = parse_query("q() <- Num(n), not S(n)")
        values = sorted(a["n"] for a in iter_assignments(q, db))
        assert values == [1, 2, 3]
        q2 = parse_query("q() <- S(s), not Num(s)")
        values = sorted(a["s"] for a in iter_assignments(q2, db))
        assert values == [5, 10]


class TestAggregateBags:
    def test_sum_counts_assignments_not_distinct_values(self, db):
        schema = make_schema({"Pay": ["who", "amt"]})
        pays = Database.from_dict(
            schema, {"Pay": [("a", 5), ("b", 5), ("c", 7)]}
        )
        # Bag semantics: both 5s count.
        assert evaluate(parse_query("[q(sum(amt)) <- Pay(w, amt)] = 17"), pays)
        assert evaluate(parse_query("[q(cntd(amt)) <- Pay(w, amt)] = 2"), pays)
        assert evaluate(parse_query("[q(count()) <- Pay(w, amt)] = 3"), pays)
