"""Query AST: construction, safety, classification."""

import pytest

from repro.errors import QueryError
from repro.query.ast import (
    AggregateQuery,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Variable,
)


def v(name):
    return Variable(name)


def c(value):
    return Constant(value)


class TestTerms:
    def test_variable_name_validation(self):
        with pytest.raises(QueryError):
            Variable("not valid")

    def test_term_equality(self):
        assert Variable("x") == Variable("x")
        assert Constant(1) == Constant(1)
        assert Variable("x") != Constant("x")


class TestAtom:
    def test_variables_and_constants(self):
        atom = Atom("R", (v("x"), c(5), v("y")))
        assert atom.variables == (v("x"), v("y"))
        assert atom.constants == (c(5),)
        assert atom.constant_positions() == ((1, 5),)

    def test_negation_flag(self):
        atom = Atom("R", (v("x"),), negated=True)
        assert "not" in str(atom)

    def test_invalid_term_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ("raw string",))


class TestComparison:
    def test_operators(self):
        assert Comparison(c(1), "<", c(2)).holds(1, 2)
        assert Comparison(c(2), ">=", c(2)).holds(2, 2)
        assert Comparison(c(1), "!=", c(2)).holds(1, 2)
        assert not Comparison(c(1), "=", c(2)).holds(1, 2)

    def test_incomparable_types_are_false_not_error(self):
        comparison = Comparison(v("x"), "<", v("y"))
        assert comparison.holds("a", 1) is False

    def test_equality_works_across_types(self):
        assert not Comparison(v("x"), "=", v("y")).holds("1", 1)
        assert Comparison(v("x"), "!=", v("y")).holds("1", 1)

    def test_bad_operator(self):
        with pytest.raises(QueryError):
            Comparison(c(1), "~", c(2))


class TestConjunctiveQuery:
    def test_positive_classification(self):
        q = ConjunctiveQuery([Atom("R", (v("x"),))])
        assert q.is_positive
        q2 = ConjunctiveQuery(
            [Atom("R", (v("x"),)), Atom("S", (v("x"),), negated=True)]
        )
        assert not q2.is_positive
        assert len(q2.negated_atoms) == 1

    def test_needs_positive_atom(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([Atom("R", (v("x"),), negated=True)])

    def test_safety_negated_atom(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                [Atom("R", (v("x"),)), Atom("S", (v("z"),), negated=True)]
            )

    def test_safety_comparison(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                [Atom("R", (v("x"),))], [Comparison(v("x"), "<", v("free"))]
            )

    def test_variables_collected(self):
        q = ConjunctiveQuery(
            [Atom("R", (v("x"), v("y")))], [Comparison(v("x"), "!=", v("y"))]
        )
        assert q.variables == frozenset({v("x"), v("y")})

    def test_relations(self):
        q = ConjunctiveQuery([Atom("R", (v("x"),)), Atom("S", (v("x"),))])
        assert q.relations() == frozenset({"R", "S"})


class TestAggregateQuery:
    def _body(self):
        return [Atom("R", (v("x"), v("a")))]

    def test_construction(self):
        q = AggregateQuery("sum", (v("a"),), self._body(), ">", 5)
        assert q.func == "sum"
        assert q.op == ">"
        assert q.threshold == 5
        assert q.is_positive

    def test_unknown_function(self):
        with pytest.raises(QueryError):
            AggregateQuery("median", (v("a"),), self._body(), ">", 5)

    def test_sum_arity(self):
        with pytest.raises(QueryError):
            AggregateQuery("sum", (v("a"), v("x")), self._body(), ">", 5)

    def test_cntd_needs_args(self):
        with pytest.raises(QueryError):
            AggregateQuery("cntd", (), self._body(), ">", 5)

    def test_count_allows_zero_args(self):
        q = AggregateQuery("count", (), self._body(), ">", 5)
        assert q.agg_terms == ()

    def test_agg_variable_must_be_in_body(self):
        with pytest.raises(QueryError):
            AggregateQuery("sum", (v("zz"),), self._body(), ">", 5)

    def test_body_safety_enforced(self):
        with pytest.raises(QueryError):
            AggregateQuery(
                "count",
                (),
                [Atom("R", (v("x"), v("a")))],
                ">",
                1,
                comparisons=[Comparison(v("unbound"), "=", c(1))],
            )
