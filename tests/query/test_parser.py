"""The denial-constraint text syntax."""

import pytest

from repro.errors import ParseError, QueryError
from repro.query.ast import AggregateQuery, ConjunctiveQuery, Constant, Variable
from repro.query.parser import parse_query


class TestConjunctiveParsing:
    def test_simple_query(self):
        q = parse_query("q() <- TxOut(ntx, s, 'U8Pk', a)")
        assert isinstance(q, ConjunctiveQuery)
        assert q.name == "q"
        assert len(q.atoms) == 1
        atom = q.atoms[0]
        assert atom.relation == "TxOut"
        assert atom.terms[2] == Constant("U8Pk")
        assert atom.terms[0] == Variable("ntx")

    def test_multiple_atoms_and_comparison(self):
        q = parse_query(
            "q1() <- TxIn(p1, s1, 'A', 1, n1, 'S'), TxIn(p2, s2, 'A', 1, n2, 'S'), "
            "n1 != n2"
        )
        assert len(q.positive_atoms) == 2
        assert len(q.comparisons) == 1
        assert q.comparisons[0].op == "!="

    def test_negated_atom(self):
        q = parse_query("q2() <- TxOut(n, s, pk, a), not Trusted(pk)")
        assert len(q.negated_atoms) == 1
        assert q.negated_atoms[0].relation == "Trusted"

    def test_negation_unicode(self):
        q = parse_query("q() <- R(x), ¬ S(x)")
        assert len(q.negated_atoms) == 1

    def test_numbers(self):
        q = parse_query("q() <- R(x, 3, -2, 1.5)")
        values = [t.value for t in q.atoms[0].terms[1:]]
        assert values == [3, -2, 1.5]
        assert isinstance(values[0], int)
        assert isinstance(values[2], float)

    def test_double_quoted_strings(self):
        q = parse_query('q() <- R(x, "hello world")')
        assert q.atoms[0].terms[1] == Constant("hello world")

    def test_escaped_quote(self):
        q = parse_query(r"q() <- R(x, 'it\'s')")
        assert q.atoms[0].terms[1] == Constant("it's")

    def test_alternative_arrows(self):
        for arrow in ["<-", ":-", "←"]:
            q = parse_query(f"q() {arrow} R(x)")
            assert isinstance(q, ConjunctiveQuery)

    def test_comparison_operators(self):
        q = parse_query("q() <- R(x, y), x < y, x <= 3, y >= 2, x = 1, y > 0")
        ops = [comparison.op for comparison in q.comparisons]
        assert ops == ["<", "<=", ">=", "=", ">"]


class TestAggregateParsing:
    def test_sum(self):
        q = parse_query("[q3(sum(a)) <- TxIn(t, s, 'A', a, nt, 'Sg')] > 5")
        assert isinstance(q, AggregateQuery)
        assert q.func == "sum"
        assert q.op == ">"
        assert q.threshold == 5
        assert q.agg_terms == (Variable("a"),)

    def test_cntd(self):
        q = parse_query(
            "[q4(cntd(ntx)) <- TxIn(pt, ps, 'A', a, ntx, 'S'), "
            "TxOut(ntx, s, 'B', a2)] > 10"
        )
        assert q.func == "cntd"
        assert len(q.atoms) == 2

    def test_count_no_args(self):
        q = parse_query("[q(count()) <- R(x)] >= 3")
        assert q.func == "count"
        assert q.agg_terms == ()

    def test_unknown_aggregate(self):
        with pytest.raises(ParseError):
            parse_query("[q(avg(a)) <- R(a)] > 1")

    def test_threshold_must_be_constant(self):
        with pytest.raises(ParseError):
            parse_query("[q(sum(a)) <- R(a)] > x")


class TestErrors:
    def test_unsafe_query_rejected(self):
        with pytest.raises(QueryError):
            parse_query("q() <- R(x), y < 3")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("q() <- R(x) extra")

    def test_unterminated(self):
        with pytest.raises(ParseError):
            parse_query("q() <- R(x,")

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_query("q() R(x)")

    def test_bad_character(self):
        with pytest.raises(ParseError) as info:
            parse_query("q() <- R(x) @ S(y)")
        assert info.value.position is not None

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_query("")


class TestRoundTrip:
    def test_paper_example4_query(self):
        q = parse_query(
            "q1() <- TxIn(pt1, ps1, 'AlicePK', 1, ntx1, 'AliceSig'), "
            "TxOut(ntx1, ns1, 'BobPK', 1), "
            "TxIn(pt2, ps2, 'AlicePK', 1, ntx2, 'AliceSig'), "
            "TxOut(ntx2, ns2, 'BobPK', 1), ntx1 != ntx2"
        )
        assert len(q.positive_atoms) == 4
        assert len(q.comparisons) == 1
        assert q.is_positive

    def test_str_reparses(self):
        q = parse_query("q() <- R(x, 'c'), S(x, y), x != y")
        again = parse_query(str(q))
        assert str(again) == str(q)
