"""Query analysis: connectivity, monotonicity, Θ_q/Θ_I, constant patterns."""

import pytest

from repro.query.analysis import (
    EqualityConstraint,
    constant_patterns,
    equality_constraints_from_inds,
    equality_constraints_from_query,
    is_connected,
    is_monotone,
)
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet, InclusionDependency
from repro.relational.database import make_schema


class TestConnectivity:
    def test_paper_connected_example(self):
        # q() <- R(x, y), S(w, v), T(x, v) is connected (Section 6.2).
        q = parse_query("q() <- R(x, y), S(w, v), T(x, v)")
        assert is_connected(q)

    def test_paper_disconnected_example(self):
        # q() <- R(x, y), S(w, v), y < v is NOT connected: comparisons
        # do not link terms (only '=' merges them).
        q = parse_query("q() <- R(x, y), S(w, v), y < v")
        assert not is_connected(q)

    def test_equality_comparison_connects(self):
        q = parse_query("q() <- R(x, y), S(w, v), y = v")
        assert is_connected(q)

    def test_single_atom_connected(self):
        assert is_connected(parse_query("q() <- R(x, y)"))

    def test_shared_constant_connects(self):
        # Terms include constants (Gaifman graph over terms).
        q = parse_query("q() <- R(x, 'c'), S('c', y)")
        assert is_connected(q)

    def test_aggregates_never_connected(self):
        q = parse_query("[q(sum(a)) <- R(x, a)] > 5")
        assert not is_connected(q)


class TestMonotonicity:
    def test_positive_cq_monotone(self):
        assert is_monotone(parse_query("q() <- R(x, y), x < y"))

    def test_negation_not_monotone(self):
        assert not is_monotone(parse_query("q() <- R(x, y), not S(x)"))

    @pytest.mark.parametrize(
        "query_text,expected",
        [
            ("[q(count()) <- R(x, a)] > 5", True),
            ("[q(count()) <- R(x, a)] >= 5", True),
            ("[q(count()) <- R(x, a)] < 5", False),
            ("[q(count()) <- R(x, a)] = 5", False),
            ("[q(cntd(x)) <- R(x, a)] > 5", True),
            ("[q(max(a)) <- R(x, a)] > 5", True),
            ("[q(max(a)) <- R(x, a)] < 5", False),
            ("[q(min(a)) <- R(x, a)] < 5", True),
            ("[q(min(a)) <- R(x, a)] > 5", False),
            ("[q(sum(a)) <- R(x, a)] > 5", False),  # negatives possible
        ],
    )
    def test_aggregate_cases(self, query_text, expected):
        assert is_monotone(parse_query(query_text)) is expected

    def test_sum_with_nonnegative_vouching(self):
        q = parse_query("[q(sum(a)) <- R(x, a)] > 5")
        assert is_monotone(q, assume_nonnegative=True)
        q_lt = parse_query("[q(sum(a)) <- R(x, a)] < 5")
        assert not is_monotone(q_lt, assume_nonnegative=True)

    def test_aggregate_with_negated_body_not_monotone(self):
        q = parse_query("[q(count()) <- R(x, a), not S(x)] > 5")
        assert not is_monotone(q)


class TestThetaQ:
    def test_paper_example7(self):
        # q() <- R(w, x, u), S(x, w, z), T(y, x)
        q = parse_query("q() <- R(w, x, u), S(x, w, z), T(y, x)")
        constraints = equality_constraints_from_query(q)
        expected = {
            EqualityConstraint("R", (0, 1), "S", (1, 0)),
            EqualityConstraint("R", (1,), "T", (1,)),
            EqualityConstraint("S", (0,), "T", (1,)),
        }
        assert constraints == expected

    def test_no_shared_terms_no_constraint(self):
        q = parse_query("q() <- R(x), S(y)")
        assert equality_constraints_from_query(q) == frozenset()

    def test_equality_comparison_merges(self):
        q = parse_query("q() <- R(x), S(y), x = y")
        constraints = equality_constraints_from_query(q)
        assert EqualityConstraint("R", (0,), "S", (0,)) in constraints

    def test_shared_constants_pair(self):
        q = parse_query("q() <- R(x, 'c'), S('c', y)")
        constraints = equality_constraints_from_query(q)
        assert EqualityConstraint("R", (1,), "S", (0,)) in constraints

    def test_negated_atoms_ignored(self):
        q = parse_query("q() <- R(x), not S(x)")
        assert equality_constraints_from_query(q) == frozenset()

    def test_aggregate_body_used(self):
        q = parse_query("[q(sum(a)) <- R(x, a), S(x)] > 1")
        constraints = equality_constraints_from_query(q)
        assert EqualityConstraint("R", (0,), "S", (0,)) in constraints


class TestThetaI:
    def test_from_inclusion_dependencies(self):
        schema = make_schema({"A": ["x", "y"], "B": ["u", "v"]})
        cs = ConstraintSet(
            schema, [InclusionDependency("A", ["x", "y"], "B", ["v", "u"])]
        )
        constraints = equality_constraints_from_inds(cs)
        assert constraints == frozenset(
            {EqualityConstraint("A", (0, 1), "B", (1, 0))}
        )

    def test_empty_when_no_inds(self):
        schema = make_schema({"A": ["x"]})
        assert equality_constraints_from_inds(ConstraintSet(schema)) == frozenset()


class TestConstantPatterns:
    def test_patterns_extracted(self):
        q = parse_query("q() <- TxOut(t, s, 'U8Pk', a), TxIn(p, 1, pk, a, n, sg)")
        patterns = constant_patterns(q)
        assert len(patterns) == 2
        by_rel = {p.relation: p for p in patterns}
        assert by_rel["TxOut"].positions == (2,)
        assert by_rel["TxOut"].values == ("U8Pk",)
        assert by_rel["TxIn"].positions == (1,)
        assert by_rel["TxIn"].values == (1,)

    def test_no_constants_no_patterns(self):
        assert constant_patterns(parse_query("q() <- R(x, y)")) == ()

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EqualityConstraint("R", (0, 1), "S", (0,))
