"""Query normalization and provable unsatisfiability."""

import pytest

from repro.query.ast import Constant
from repro.query.parser import parse_query
from repro.query.rewriter import Verdict, normalize


def norm(text):
    return normalize(parse_query(text))


class TestUnsatisfiable:
    @pytest.mark.parametrize(
        "text",
        [
            "q() <- R(x), x != x",
            "q() <- R(x), x < x",
            "q() <- R(x), x > x",
            "q() <- R(x), 1 = 2",
            "q() <- R(x), 3 > 5",
            "q() <- R(x), x = 1, x = 2",
            "q() <- R(x), S(x), not S(x)",
            "q() <- R(x, 'a'), not R(x, 'a')",
        ],
    )
    def test_provably_false(self, text):
        _, verdict = norm(text)
        assert verdict is Verdict.UNSATISFIABLE

    def test_checker_short_cuts_unsatisfiable(self, figure2):
        from repro.core.checker import DCSatChecker

        checker = DCSatChecker(figure2)
        result = checker.check("q() <- TxOut(t, s, pk, a), t != t")
        assert result.satisfied
        assert result.stats.algorithm == "rewrite"
        assert result.stats.evaluations == 0  # never touched the data


class TestSimplification:
    def test_trivially_true_comparisons_dropped(self):
        query, verdict = norm("q() <- R(x), 1 < 2, x = x, x >= x")
        assert verdict is Verdict.NORMAL
        assert query.comparisons == ()

    def test_duplicate_atoms_merged(self):
        query, _ = norm("q() <- R(x, y), R(x, y), S(x)")
        assert len(query.atoms) == 2

    def test_duplicate_comparisons_merged(self):
        query, _ = norm("q() <- R(x, y), x != y, x != y")
        assert len(query.comparisons) == 1

    def test_constant_binding_substituted(self):
        query, _ = norm("q() <- R(x, y), x = 5")
        atom = query.atoms[0]
        assert atom.terms[0] == Constant(5)
        assert query.comparisons == ()

    def test_binding_exposes_constant_to_coverage(self):
        from repro.query.analysis import constant_patterns

        query, _ = norm("q() <- TxOut(t, s, pk, a), pk = 'U8Pk'")
        patterns = constant_patterns(query)
        assert patterns and patterns[0].values == ("U8Pk",)

    def test_var_var_equalities_kept(self):
        query, _ = norm("q() <- R(x, y), x = y")
        assert len(query.comparisons) == 1

    def test_aggregate_bodies_normalized(self):
        query, verdict = norm("[q(sum(a)) <- R(x, a), x = 1, 2 < 3] > 5")
        assert verdict is Verdict.NORMAL
        assert query.comparisons == ()
        assert query.atoms[0].terms[0] == Constant(1)

    def test_aggregate_term_substituted(self):
        query, _ = norm("[q(max(a)) <- R(x, a), a = 7] > 5")
        assert query.agg_terms == (Constant(7),)

    def test_unsatisfiable_aggregate(self):
        _, verdict = norm("[q(count()) <- R(x, a), a != a] > 0")
        assert verdict is Verdict.UNSATISFIABLE


class TestEquivalence:
    def test_normalized_query_evaluates_identically(self, figure2):
        from repro.query.evaluator import evaluate

        texts = [
            "q() <- TxOut(t, s, pk, a), pk = 'U4Pk'",
            "q() <- TxOut(t, s, pk, a), TxOut(t, s, pk, a), 1 <= 1",
            "q() <- TxIn(p, s, pk, a, n, g), a = 1.0, a >= a",
        ]
        for text in texts:
            original = parse_query(text)
            rewritten, verdict = normalize(original)
            assert verdict is Verdict.NORMAL
            assert evaluate(rewritten, figure2.current) == evaluate(
                original, figure2.current
            ), text

    def test_solver_agreement_after_normalization(self, figure2):
        from repro.core.checker import DCSatChecker

        checker = DCSatChecker(figure2)
        text = "q() <- TxOut(t, s, pk, a), pk = 'U8Pk'"
        with_norm = checker.check(text)
        without = checker.check(text, normalize=False)
        assert with_norm.satisfied == without.satisfied is False
