"""The query evaluator: joins, negation, comparisons, aggregates."""

import pytest

from repro.query.evaluator import evaluate, find_assignment, iter_assignments, iter_matches
from repro.query.parser import parse_query
from repro.relational.database import Database, make_schema


@pytest.fixture
def db() -> Database:
    schema = make_schema(
        {
            "Edge": ["src", "dst"],
            "Node": ["id", "label"],
            "Score": ["id", "value"],
        }
    )
    return Database.from_dict(
        schema,
        {
            "Edge": [(1, 2), (2, 3), (3, 4), (2, 4)],
            "Node": [(1, "a"), (2, "b"), (3, "a"), (4, "c")],
            "Score": [(1, 10), (2, 20), (3, 30), (4, 40)],
        },
    )


class TestConjunctive:
    def test_single_atom(self, db):
        assert evaluate(parse_query("q() <- Edge(1, y)"), db)
        assert not evaluate(parse_query("q() <- Edge(9, y)"), db)

    def test_join(self, db):
        assert evaluate(parse_query("q() <- Edge(x, y), Edge(y, z)"), db)
        assert evaluate(parse_query("q() <- Edge(x, y), Edge(y, z), Edge(z, w)"), db)
        # No path of length 4 exists.
        assert not evaluate(
            parse_query("q() <- Edge(a, b), Edge(b, c), Edge(c, d), Edge(d, e)"), db
        )

    def test_repeated_variable_in_atom(self, db):
        assert not evaluate(parse_query("q() <- Edge(x, x)"), db)
        db.insert("Edge", (7, 7))
        assert evaluate(parse_query("q() <- Edge(x, x)"), db)

    def test_constants_filter(self, db):
        assert evaluate(parse_query("q() <- Node(x, 'a')"), db)
        assert not evaluate(parse_query("q() <- Node(x, 'zz')"), db)

    def test_negated_atom(self, db):
        # A node with no outgoing edge.
        q = parse_query("q() <- Node(x, l), not Edge(x, x)")
        assert evaluate(q, db)
        # Every node has label != 'zz', so a negated match always holds.
        q2 = parse_query("q() <- Node(x, l), not Node(x, 'zz')")
        assert evaluate(q2, db)
        # A variable appearing only under negation is unsafe and rejected.
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            parse_query("q() <- Node(x, 'c'), not Edge(x, y)")

    def test_comparisons(self, db):
        assert evaluate(parse_query("q() <- Edge(x, y), x < y"), db)
        assert not evaluate(parse_query("q() <- Edge(x, y), x > y"), db)
        assert evaluate(parse_query("q() <- Score(i, v), v >= 40"), db)
        assert not evaluate(parse_query("q() <- Score(i, v), v > 40"), db)

    def test_inequality_join(self, db):
        q = parse_query("q() <- Node(x, l), Node(y, l), x != y")
        assert evaluate(q, db)  # nodes 1 and 3 share label 'a'

    def test_variable_free_query(self, db):
        assert evaluate(parse_query("q() <- Edge(1, 2)"), db)
        assert not evaluate(parse_query("q() <- Edge(2, 1)"), db)


class TestAssignments:
    def test_iter_assignments_complete(self, db):
        q = parse_query("q() <- Edge(2, y)")
        values = sorted(a["y"] for a in iter_assignments(q, db))
        assert values == [3, 4]

    def test_assignments_distinct(self, db):
        q = parse_query("q() <- Edge(x, y), Edge(y, z)")
        assignments = [tuple(sorted(a.items())) for a in iter_assignments(q, db)]
        assert len(assignments) == len(set(assignments))
        # paths: 1-2-3, 1-2-4, 2-3-4
        assert len(assignments) == 3

    def test_find_assignment(self, db):
        assignment = find_assignment(parse_query("q() <- Node(x, 'c')"), db)
        assert assignment == {"x": 4}
        assert find_assignment(parse_query("q() <- Node(x, 'zz')"), db) is None

    def test_iter_matches_reports_facts(self, db):
        q = parse_query("q() <- Edge(1, y), Node(y, l)")
        matches = list(iter_matches(q, db))
        assert len(matches) == 1
        _, matched = matches[0]
        assert ("Edge", (1, 2)) in matched
        assert ("Node", (2, "b")) in matched


class TestAggregates:
    def test_count(self, db):
        assert evaluate(parse_query("[q(count()) <- Edge(x, y)] = 4"), db)
        assert evaluate(parse_query("[q(count()) <- Edge(x, y)] > 3"), db)
        assert not evaluate(parse_query("[q(count()) <- Edge(x, y)] < 4"), db)

    def test_count_distinct_assignments_not_rows(self, db):
        # Two edges leave node 2: two assignments for y.
        assert evaluate(parse_query("[q(count()) <- Edge(2, y)] = 2"), db)

    def test_cntd(self, db):
        # Distinct labels: a, b, c.
        assert evaluate(parse_query("[q(cntd(l)) <- Node(x, l)] = 3"), db)
        assert not evaluate(parse_query("[q(cntd(l)) <- Node(x, l)] > 3"), db)

    def test_sum(self, db):
        assert evaluate(parse_query("[q(sum(v)) <- Score(i, v)] = 100"), db)
        assert evaluate(parse_query("[q(sum(v)) <- Score(i, v), v > 25] = 70"), db)

    def test_max_min(self, db):
        assert evaluate(parse_query("[q(max(v)) <- Score(i, v)] = 40"), db)
        assert evaluate(parse_query("[q(min(v)) <- Score(i, v)] = 10"), db)
        assert not evaluate(parse_query("[q(max(v)) <- Score(i, v)] > 40"), db)

    def test_empty_bag_is_false(self, db):
        # No matches: α(B) θ c is false by definition, even for '<'.
        assert not evaluate(parse_query("[q(count()) <- Edge(9, y)] < 100"), db)
        assert not evaluate(parse_query("[q(sum(v)) <- Score(9, v)] < 100"), db)

    def test_aggregate_with_join(self, db):
        # Sum of scores of nodes reachable from 2 in one hop: 30 + 40.
        q = parse_query("[q(sum(v)) <- Edge(2, y), Score(y, v)] = 70")
        assert evaluate(q, db)

    def test_multi_arity_cntd(self, db):
        q = parse_query("[q(cntd(x, y)) <- Edge(x, y)] = 4")
        assert evaluate(q, db)


class TestEvaluationOrder:
    def test_bound_first_heuristic_is_semantics_preserving(self, db):
        # Regardless of atom order the result must be identical.
        q1 = parse_query("q() <- Edge(x, y), Node(y, 'c')")
        q2 = parse_query("q() <- Node(y, 'c'), Edge(x, y)")
        assert evaluate(q1, db) == evaluate(q2, db) is True
