"""CQ containment via homomorphisms, and denial-constraint subsumption."""

import pytest

from repro.errors import AlgorithmError
from repro.query.containment import (
    denial_subsumes,
    find_homomorphism,
    is_contained_in,
)
from repro.query.parser import parse_query


def q(text):
    return parse_query(text)


class TestHomomorphism:
    def test_identity(self):
        query = q("q() <- R(x, y)")
        assert find_homomorphism(query, query) is not None

    def test_variable_to_constant(self):
        general = q("q() <- R(x, y)")
        specific = q("q() <- R(1, y)")
        assert find_homomorphism(general, specific) is not None
        assert find_homomorphism(specific, general) is None

    def test_collapse_variables(self):
        loose = q("q() <- R(x, y)")
        tight = q("q() <- R(z, z)")
        assert find_homomorphism(loose, tight) is not None
        assert find_homomorphism(tight, loose) is None

    def test_extra_atoms(self):
        small = q("q() <- R(x, y)")
        big = q("q() <- R(x, y), S(y, z)")
        assert find_homomorphism(small, big) is not None
        assert find_homomorphism(big, small) is None

    def test_path_folding(self):
        # A 2-path maps onto a self-loop.
        path = q("q() <- E(x, y), E(y, z)")
        loop = q("q() <- E(v, v)")
        assert find_homomorphism(path, loop) is not None

    def test_negation_rejected(self):
        with pytest.raises(AlgorithmError):
            find_homomorphism(q("q() <- R(x), not S(x)"), q("q() <- R(x)"))


class TestContainment:
    def test_specific_contained_in_general(self):
        general = q("q() <- R(x, y)")
        specific = q("q() <- R(1, y), S(y)")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_equivalent_queries(self):
        a = q("q() <- R(x, y), R(y, z)")
        b = q("q() <- R(u, v), R(v, w)")
        assert is_contained_in(a, b) and is_contained_in(b, a)

    def test_comparisons_conservative(self):
        plain = q("q() <- R(x, y)")
        ordered = q("q() <- R(x, y), x < y")
        # The ordered query is contained in the plain one...
        assert is_contained_in(ordered, plain)
        # ...but not vice versa (and the conservative check agrees).
        assert not is_contained_in(plain, ordered)

    def test_matching_comparisons_map(self):
        a = q("q() <- R(x, y), x != y")
        b = q("q() <- R(u, v), u != v")
        assert is_contained_in(a, b)


class TestDenialSubsumption:
    def test_direction(self):
        # ¬"R has any row for key 1" subsumes ¬"R has row (1, 2)".
        broad = q("q() <- R(1, y)")
        narrow = q("q() <- R(1, 2)")
        assert denial_subsumes(broad, narrow)
        assert not denial_subsumes(narrow, broad)

    def test_semantics_on_blockchain_database(self, figure2):
        """If ¬q1 subsumes ¬q2 and the checker says q1 is safe, then q2
        must be safe — verified against the actual solver."""
        from repro.core.checker import DCSatChecker

        broad = q("q() <- TxOut(t, s, 'MartianPk', a)")
        narrow = q("q() <- TxOut(t, 1, 'MartianPk', 7.0)")
        assert denial_subsumes(broad, narrow)
        checker = DCSatChecker(figure2)
        assert checker.check(broad).satisfied
        assert checker.check(narrow).satisfied

    def test_subsumption_mirrors_solver_verdicts(self, figure2):
        from repro.core.checker import DCSatChecker

        broad = q("q() <- TxOut(t, s, 'U7Pk', a)")
        narrow = q("q() <- TxOut(t, s, 'U7Pk', 4.0)")
        assert denial_subsumes(broad, narrow)
        checker = DCSatChecker(figure2)
        # Here the broad one is violable, so subsumption promises nothing
        # about the narrow one — both must be (and are) checked honestly.
        assert not checker.check(broad).satisfied
        assert not checker.check(narrow).satisfied
