"""The fault-injection harness: seeded chaos between router and shards
must never break verdict parity with an uninterrupted single monitor —
the whole durability design (journal-before-send, revive-resync,
idempotency gating) under adversarial transport behavior."""

import random
from contextlib import contextmanager

import pytest

from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.errors import ServiceError
from repro.fabric import (
    ChaosFleet,
    FabricJournal,
    FabricMonitor,
    FaultPlan,
    ThreadFleet,
)
from repro.fabric.topology import copy_database
from repro.relational.transaction import Transaction

from tests.fabric.conftest import two_relation_db


def chaos_fabric(db_factory, plan, shards=2, **kwargs):
    db = db_factory()
    inner = ThreadFleet(
        lambda: ConstraintMonitor(DCSatChecker(copy_database(db))),
        shards=shards,
    )
    return FabricMonitor(db, ChaosFleet(inner, plan), **kwargs)


@contextmanager
def healed(plan):
    """Suspend fault injection (the classic chaos-test cadence: inject
    during the workload, heal the network, verify convergence).  Reads
    during chaos trigger revives whose journal replays also ride the
    faulty proxy, so a verdict sweep only terminates on a healed plan —
    mutations, by contrast, must absorb every fault mid-chaos."""
    saved = {kind: getattr(plan, kind) for kind in
             ("drop", "reply_drop", "delay", "truncate", "kill_replay")}
    for kind in saved:
        setattr(plan, kind, 0.0)
    try:
        yield
    finally:
        for kind, value in saved.items():
            setattr(plan, kind, value)


def assert_verdicts(got, want):
    assert set(got) == set(want)
    for name in want:
        assert got[name].satisfied == want[name].satisfied, name
        assert got[name].witness == want[name].witness, name


def check_parity(fabric, single):
    """Verdict parity on a healed network: the revives this forces must
    replay every chaos-built journal to exactly the single monitor's
    state."""
    with healed(fabric._fleet.plan):
        got = fabric.status_all()
    assert_verdicts(got, want=single.status_all())


def drive(rng, fabric, single, steps):
    """A randomized trace where mutations assert invalidation parity
    step by step (router-side mirrors make them fault-independent)."""
    next_id = 0
    for step in range(steps):
        pending = list(single.checker.db.pending_ids)
        roll = rng.random()
        if roll < 0.45 or not pending:
            next_id += 1
            if rng.random() < 0.25:  # spanning co-write
                facts = {
                    rel: [(rng.randrange(4), rng.choice("xy"))]
                    for rel in ("A", "B")
                }
            else:
                rel = rng.choice(["A", "B"])
                facts = {rel: [(rng.randrange(4), rng.choice("xy"))]}
            tx = Transaction(facts, tx_id=f"T{next_id}")
            assert fabric.issue(tx) == single.issue(tx)
        elif roll < 0.65:
            victim = rng.choice(pending)
            assert fabric.commit(victim) == single.commit(victim)
        elif roll < 0.8:
            victim = rng.choice(pending)
            assert fabric.forget(victim) == single.forget(victim)
        else:
            next_id += 1
            rel = rng.choice(["A", "B"])
            tx = Transaction({rel: [(100 + next_id, "z")]}, tx_id=f"X{next_id}")
            assert fabric.absorb(tx) == single.absorb(tx)
        if step % 5 == 4:
            check_parity(fabric, single)
    check_parity(fabric, single)


class TestChaosParity:
    @pytest.mark.parametrize("seed", [11, 42])
    def test_transport_faults_never_break_parity(self, seed):
        plan = FaultPlan(
            seed=seed, drop=0.08, reply_drop=0.08, truncate=0.08
        )
        single = ConstraintMonitor(DCSatChecker(two_relation_db()))
        fabric = chaos_fabric(two_relation_db, plan)
        try:
            for m in (fabric, single):
                m.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
                m.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
            drive(random.Random(seed), fabric, single, steps=25)
            # The run must actually have been chaotic.
            assert sum(fabric._fleet.fault_counts().values()) > 0
        finally:
            fabric.close()

    def test_kill_during_replay_converges(self):
        # Every respawn gets SIGKILLed again after two replayed ops
        # until the plan's coin lands tails: the revive path's own
        # crash window must also resolve to the journaled state.
        plan = FaultPlan(seed=7, drop=0.1, kill_replay=0.5, kill_after=2)
        single = ConstraintMonitor(DCSatChecker(two_relation_db()))
        fabric = chaos_fabric(two_relation_db, plan)
        try:
            for m in (fabric, single):
                m.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
                m.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
            rng = random.Random(7)
            for step in range(10):
                tx = Transaction(
                    {rng.choice(["A", "B"]): [(step % 3, rng.choice("xy"))]},
                    tx_id=f"T{step}",
                )
                assert fabric.issue(tx) == single.issue(tx)
                if step % 3 == 2:
                    fabric._fleet.kill(rng.randrange(2))
            check_parity(fabric, single)
        finally:
            fabric.close()

    def test_delayed_replies_time_out_then_recover(self):
        # With every reply delayed past the router's shard timeout, a
        # mutation neither blocks nor fails: it is journaled, the
        # revive is deferred, and once the network heals the next read
        # replays the shard to the full journaled state.
        plan = FaultPlan(seed=3, delay=1.0, delay_seconds=0.6)
        single = ConstraintMonitor(DCSatChecker(two_relation_db()))
        fabric = chaos_fabric(two_relation_db, plan, shard_timeout=0.15)
        try:
            single.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
            fabric.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
            tx = Transaction({"A": [(1, "x")]}, tx_id="TA")
            assert fabric.issue(tx) == single.issue(tx)
            assert plan.next_fault(0) == "delay"  # chaos really was on
            plan.delay = 0.0  # the network heals
            check_parity(fabric, single)
            for m in (fabric, single):
                m.issue(Transaction({"A": [(1, "y")]}, tx_id="TB"))
                m.commit("TA")
                m.commit("TB")
            check_parity(fabric, single)
            assert not fabric.status("a1").satisfied
        finally:
            fabric.close()

    def test_chaos_with_durable_journal_stays_bounded(self, tmp_path):
        # Faults force revives and resends; compaction must still keep
        # the durable journal proportional to live state, and a crash
        # after all that chaos must still recover to parity.
        plan = FaultPlan(seed=5, drop=0.06, reply_drop=0.06)
        db = two_relation_db()
        inner = ThreadFleet(
            lambda: ConstraintMonitor(DCSatChecker(copy_database(db))),
            shards=2,
        )
        journal = FabricJournal(
            str(tmp_path / "journal"), shards=2, fsync="always"
        )
        single = ConstraintMonitor(DCSatChecker(two_relation_db()))
        fabric = FabricMonitor(
            db, ChaosFleet(inner, plan), journal=journal, journal_max_ops=6
        )
        try:
            for m in (fabric, single):
                m.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
            for i in range(10):
                tx = Transaction({"A": [(i, "x")]}, tx_id=f"T{i}")
                for m in (fabric, single):
                    m.issue(tx)
                for m in (fabric, single):
                    m.commit(f"T{i}")
            check_parity(fabric, single)
            a_shard = fabric._shards[fabric.topology.slot_of("a1")]
            assert len(a_shard.journal) < 22
            on_disk = journal.bytes
            assert on_disk < 50_000
        finally:
            fabric.close()

        fresh = ThreadFleet(
            lambda: ConstraintMonitor(DCSatChecker(copy_database(db))),
            shards=2,
        )
        fresh.start()
        recovered = FabricMonitor.recover(
            two_relation_db(),
            fresh,
            journal=FabricJournal(str(tmp_path / "journal")),
        )
        try:
            assert_verdicts(recovered.status_all(), single.status_all())
        finally:
            recovered.close()
