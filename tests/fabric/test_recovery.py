"""Router crash recovery from the durable journal: verdict parity with
an uninterrupted single monitor, torn tails, compaction, failed replay,
the liveness watchdog's backoff and circuit breaker, orphan reaping."""

import json
import os
import subprocess
import time

import pytest

from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.errors import FabricError
from repro.fabric import (
    FabricJournal,
    FabricMonitor,
    LivenessWatchdog,
    ThreadFleet,
    reap_stale,
)
from repro.fabric.journal import decode_segment, encode_record
from repro.fabric.router import compact_records
from repro.fabric.topology import copy_database
from repro.relational.transaction import Transaction

from tests.fabric.conftest import two_relation_db


def durable_fabric(db_factory, journal_dir, shards=2, **kwargs):
    db = db_factory()
    fleet = ThreadFleet(
        lambda: ConstraintMonitor(DCSatChecker(copy_database(db))),
        shards=shards,
    )
    journal = FabricJournal(str(journal_dir), shards=shards, fsync="always")
    return FabricMonitor(db, fleet, journal=journal, **kwargs)


def recover_fabric(db_factory, journal_dir, shards=2, **kwargs):
    db = db_factory()
    fleet = ThreadFleet(
        lambda: ConstraintMonitor(DCSatChecker(copy_database(db))),
        shards=shards,
    )
    fleet.start()
    journal = FabricJournal(str(journal_dir))
    return FabricMonitor.recover(db, fleet, journal=journal, **kwargs)


def assert_parity(fabric, single):
    got = fabric.status_all()
    want = single.status_all()
    assert set(got) == set(want)
    for name in want:
        assert got[name].satisfied == want[name].satisfied, name
        assert got[name].witness == want[name].witness, name


def tear_last_record(journal_dir, shard) -> dict:
    """Truncate the shard's newest journal record halfway (a torn tail)."""
    sdir = os.path.join(str(journal_dir), f"shard-{shard:02d}")
    wals = sorted(n for n in os.listdir(sdir) if n.startswith("wal-"))
    path = os.path.join(sdir, wals[-1])
    with open(path, "rb") as handle:
        data = handle.read()
    records, torn = decode_segment(data, path)
    assert torn == 0 and records
    cut = len(encode_record(records[-1])) // 2
    with open(path, "r+b") as handle:
        handle.truncate(len(data) - cut)
    return records[-1]


class TestRecovery:
    def test_recover_matches_uninterrupted_single_monitor(self, tmp_path):
        jdir = tmp_path / "journal"
        single = ConstraintMonitor(DCSatChecker(two_relation_db()))
        fabric = durable_fabric(two_relation_db, jdir)
        for m in (fabric, single):
            m.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
            m.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        script = [
            ("issue", Transaction({"A": [(1, "x")]}, tx_id="TA")),
            ("issue", Transaction({"B": [(1, "x")]}, tx_id="TB")),
            ("issue", Transaction({"A": [(1, "y")]}, tx_id="TC")),
            ("commit", "TA"),
            ("absorb", Transaction({"B": [(1, "y")]}, tx_id="TX")),
        ]
        for kind, payload in script:
            assert getattr(fabric, kind)(payload) == getattr(single, kind)(
                payload
            )
        fabric.close()  # the crash: nothing flushed beyond the WAL

        recovered = recover_fabric(two_relation_db, jdir)
        try:
            assert set(recovered.names) == {"a1", "b1"}
            # /fabricz tells the recovery story (a fresh boot says 0).
            assert recovered.describe()["recoveries"] == 1
            assert_parity(recovered, single)
            # Life goes on: pending state recovered well enough to keep
            # routing new ops in lockstep with the single monitor.
            after = [
                ("commit", "TC"),
                ("issue", Transaction({"B": [(2, "x")]}, tx_id="TD")),
                ("forget", "TB"),
            ]
            for kind, payload in after:
                assert getattr(recovered, kind)(payload) == getattr(
                    single, kind
                )(payload)
            assert_parity(recovered, single)
        finally:
            recovered.close()

    def test_recover_completes_op_torn_mid_fanout(self, tmp_path):
        # Tear the *applying* shard's copy of the last op: the other
        # shard's skip record at the same sequence is the evidence the
        # recovery uses to re-complete the fanout.
        jdir = tmp_path / "journal"
        single = ConstraintMonitor(DCSatChecker(two_relation_db()))
        fabric = durable_fabric(two_relation_db, jdir)
        for m in (fabric, single):
            m.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
            m.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        for m in (fabric, single):
            m.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
            m.issue(Transaction({"A": [(1, "y")]}, tx_id="TB"))
        victim = fabric.topology.slot_of("a1")
        fabric.close()
        torn = tear_last_record(jdir, victim)
        assert torn["op"] == "issue" and torn["k"] == "op"

        recovered = recover_fabric(two_relation_db, jdir)
        try:
            assert_parity(recovered, single)  # TB was re-fanned out
            # Both issues survived the tear: committing them violates a1
            # in lockstep with the uninterrupted monitor.
            for m in (recovered, single):
                m.commit("TA")
                m.commit("TB")
            assert_parity(recovered, single)
            assert not recovered.status("a1").satisfied
        finally:
            recovered.close()

    def test_recover_restores_backlog_for_decoupled_shard(self, tmp_path):
        # An op skipped pre-crash must drain after recovery exactly as
        # it would have without the crash.
        jdir = tmp_path / "journal"
        single = ConstraintMonitor(DCSatChecker(two_relation_db()))
        fabric = durable_fabric(two_relation_db, jdir)
        for m in (fabric, single):
            m.register("a1", "q() <- A(k, v)")
            m.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        for m in (fabric, single):
            m.issue(Transaction({"B": [(1, "x")]}, tx_id="TB"))
        a_slot = fabric.topology.slot_of("a1")
        b_slot = fabric.topology.slot_of("b1")
        assert a_slot != b_slot
        fabric.close()

        recovered = recover_fabric(two_relation_db, jdir)
        try:
            assert len(recovered.topology.slots[a_slot].skipped) == 1
            # Registering a B-touching constraint on the backlogged
            # shard forces the drain through the recovered entries.
            recovered.register("b2", "q() <- B(k, v), A(k, v)")
            single.register("b2", "q() <- B(k, v), A(k, v)")
            for m in (recovered, single):
                m.issue(Transaction({"B": [(1, "y")]}, tx_id="TC"))
            assert_parity(recovered, single)
        finally:
            recovered.close()

    def test_recover_rejects_mismatched_fleet(self, tmp_path):
        jdir = tmp_path / "journal"
        durable_fabric(two_relation_db, jdir, shards=2).close()
        with pytest.raises(FabricError):
            recover_fabric(two_relation_db, jdir, shards=3)

    def test_failed_replay_leaves_shard_dead_then_lazily_revives(
        self, tmp_path, monkeypatch
    ):
        jdir = tmp_path / "journal"
        single = ConstraintMonitor(DCSatChecker(two_relation_db()))
        fabric = durable_fabric(two_relation_db, jdir)
        for m in (fabric, single):
            m.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        for m in (fabric, single):
            m.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
        victim = fabric.topology.slot_of("a1")
        fabric.close()

        original = FabricMonitor._replay
        failed = []

        def flaky_replay(self, shard):
            if shard.index == victim and not failed:
                failed.append(shard.index)
                raise ConnectionError("shard died mid-replay")
            return original(self, shard)

        monkeypatch.setattr(FabricMonitor, "_replay", flaky_replay)
        recovered = recover_fabric(two_relation_db, jdir)
        try:
            assert failed == [victim]
            assert recovered.fleet_health()["dead"] == [victim]
            # The journal stayed intact, so the next touching op
            # revives the shard from scratch with its full history.
            for m in (recovered, single):
                m.issue(Transaction({"A": [(1, "y")]}, tx_id="TB"))
            assert recovered.fleet_health()["dead"] == []
            assert_parity(recovered, single)
        finally:
            recovered.close()

    def test_compaction_bounds_journal_and_preserves_recovery(self, tmp_path):
        jdir = tmp_path / "journal"
        single = ConstraintMonitor(DCSatChecker(two_relation_db()))
        fabric = durable_fabric(two_relation_db, jdir, journal_max_ops=6)
        for m in (fabric, single):
            m.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
            m.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        for i in range(12):
            tx = Transaction({"A": [(i, "x")]}, tx_id=f"T{i}")
            for m in (fabric, single):
                m.issue(tx)
            for m in (fabric, single):
                m.commit(f"T{i}")
        total_ops = 2 + 12 * 2
        a_shard = fabric._shards[fabric.topology.slot_of("a1")]
        assert len(a_shard.journal) < total_ops
        assert fabric._journal.shards[a_shard.index].snapshots > 0
        on_disk = fabric._journal.bytes
        fabric.close()

        recovered = recover_fabric(two_relation_db, jdir, journal_max_ops=6)
        try:
            assert_parity(recovered, single)
            for m in (recovered, single):
                m.issue(Transaction({"A": [(0, "y")]}, tx_id="TZ"))
                m.commit("TZ")
            assert_parity(recovered, single)
            # A(0,'x') came from a compacted-away issue/commit pair,
            # A(0,'y') from the post-recovery commit: the violation
            # needs both histories to have survived.
            assert not recovered.status("a1").satisfied
        finally:
            recovered.close()
        assert on_disk < 100_000  # compacted, not unbounded history


class TestCompactRecords:
    def issue(self, g, tx_id, rel="A"):
        return {
            "g": g,
            "k": "op",
            "op": "issue",
            "args": {"tx": {"id": tx_id, "facts": {rel: [[1, "x"]]}}},
        }

    def commit(self, g, tx_id):
        return {"g": g, "k": "op", "op": "commit", "args": {"tx_id": tx_id}}

    def forget(self, g, tx_id):
        return {"g": g, "k": "op", "op": "forget", "args": {"tx_id": tx_id}}

    def register(self, g, name):
        return {
            "g": g,
            "k": "op",
            "op": "register",
            "args": {"name": name, "query": "q() <- A(k, v)"},
        }

    def test_issue_commit_becomes_absorb(self):
        records = [self.register(1, "c"), self.issue(2, "T"), self.commit(3, "T")]
        out = compact_records(records)
        assert [r["op"] for r in out] == ["register", "absorb"]
        assert out[1]["g"] == 3
        assert out[1]["args"]["tx"]["id"] == "T"

    def test_issue_forget_vanishes(self):
        records = [self.register(1, "c"), self.issue(2, "T"), self.forget(3, "T")]
        assert [r["op"] for r in compact_records(records)] == ["register"]

    def test_register_unregister_vanishes(self):
        records = [
            self.register(1, "c"),
            {"g": 2, "k": "op", "op": "unregister", "args": {"name": "c"}},
            self.issue(3, "T"),
        ]
        assert [r["op"] for r in compact_records(records)] == ["issue"]

    def test_superseded_skip_dropped_live_skip_kept(self):
        live = {
            "g": 9,
            "k": "skip",
            "op": "issue",
            "args": {"tx": {"id": "S", "facts": {}}},
            "rels": ["B"],
        }
        drained = dict(live, g=2)
        records = [drained, self.issue(2, "T"), live]
        out = compact_records(records)
        assert drained not in out
        assert live in out

    def test_refuses_non_self_contained_history(self):
        assert compact_records([self.commit(1, "T")]) is None
        assert (
            compact_records(
                [{"g": 1, "k": "op", "op": "unregister", "args": {"name": "c"}}]
            )
            is None
        )
        assert compact_records([{"g": 1, "k": "wat", "op": "issue"}]) is None


class FakeFleet:
    def __init__(self, count):
        self.alive_flags = [True] * count

    def alive(self, index):
        return self.alive_flags[index]


class FakeRouter:
    def __init__(self, count=2):
        self._fleet = FakeFleet(count)
        self.broken = {}
        self.revives = []
        self.fail_revive = False

    @property
    def shard_count(self):
        return len(self._fleet.alive_flags)

    def is_broken(self, index):
        return index in self.broken

    def break_shard(self, index, reason):
        self.broken[index] = reason

    def revive_shard(self, index):
        if self.fail_revive:
            raise ConnectionError("respawn failed")
        self.revives.append(index)
        self._fleet.alive_flags[index] = True


class TestLivenessWatchdog:
    def test_respawns_dead_shard(self):
        router = FakeRouter()
        dog = LivenessWatchdog(router)
        router._fleet.alive_flags[1] = False
        dog.check_once(now=0.0)
        assert router.revives == [1]
        assert dog.respawns == 1
        dog.check_once(now=1.0)  # healthy pass: nothing more
        assert router.revives == [1]

    def test_exponential_backoff_between_failed_respawns(self):
        router = FakeRouter()
        router._fleet.alive_flags[0] = False
        router.fail_revive = True
        dog = LivenessWatchdog(router, backoff_base=1.0, flap_limit=100)
        dog.check_once(now=0.0)  # fails; next attempt at 1.0
        dog.check_once(now=0.5)  # inside backoff: no attempt
        assert dog._failures[0] == 1
        dog.check_once(now=1.5)  # fails again; next at 1.5 + 2.0
        assert dog._failures[0] == 2
        dog.check_once(now=3.0)
        assert dog._failures[0] == 2  # still backing off
        router.fail_revive = False
        dog.check_once(now=4.0)
        assert router.revives == [0]
        assert dog._failures[0] == 0

    def test_flapping_shard_gets_circuit_broken(self):
        router = FakeRouter()
        dog = LivenessWatchdog(router, flap_limit=3, flap_window=10.0)
        for now in (0.0, 1.0, 2.0):
            router._fleet.alive_flags[0] = False
            dog.check_once(now=now)
        assert 0 in router.broken
        assert router.revives == [0, 0]  # third crash broke, not revived
        router._fleet.alive_flags[0] = False
        dog.check_once(now=3.0)  # broken shards are left alone
        assert router.revives == [0, 0]

    def test_slow_crashes_age_out_of_flap_window(self):
        router = FakeRouter()
        dog = LivenessWatchdog(router, flap_limit=3, flap_window=5.0)
        for now in (0.0, 10.0, 20.0, 30.0):
            router._fleet.alive_flags[0] = False
            dog.check_once(now=now)
        assert router.broken == {}
        assert len(router.revives) == 4

    def test_circuit_break_integrates_with_router(self):
        from tests.fabric.conftest import thread_fabric

        fabric = thread_fabric(two_relation_db, shards=2)
        try:
            fabric.register("a1", "q() <- A(k, v)")
            victim = fabric.topology.slot_of("a1")
            # A watchdog-managed router reports its probe state on
            # /fabricz; kill a shard and one probe pass respawns it.
            dog = fabric.start_watchdog(interval=3600.0)
            fabric._fleet.kill(victim)
            dog.check_once()
            info = fabric.describe()
            assert info["watchdog"]["respawns"] == 1
            assert info["recoveries"] == 0  # fresh boot, no journal
            fabric.break_shard(victim, "test says so")
            health = fabric.fleet_health()
            assert health["broken"] == [victim]
            assert not health["ok"]
            fabric._fleet.kill(victim)
            with pytest.raises(FabricError) as excinfo:
                fabric.status("a1")
            assert excinfo.value.code == "circuit-open"
            # Mutations still journal durably instead of failing.
            fabric.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
            fabric.reset_shard(victim)
            assert fabric.fleet_health()["broken"] == []
            assert not fabric.status("a1").satisfied
        finally:
            fabric.close()


class TestReapStale:
    def test_reaps_only_repro_lookalikes(self, tmp_path):
        if not os.path.isdir("/proc"):
            pytest.skip("needs /proc to verify pid identity")
        orphan = subprocess.Popen(["bash", "-c", "exec -a repro-orphan sleep 30"])
        stranger = subprocess.Popen(["sleep", "30"])

        # Freshly forked children briefly show the *parent's* cmdline
        # (this pytest invocation mentions "repro") until exec lands;
        # wait for the real argv0 so the reap guard sees the truth.
        def await_argv0(proc, argv0):
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with open(f"/proc/{proc.pid}/cmdline", "rb") as fh:
                    if fh.read().split(b"\0")[0] == argv0:
                        return
                time.sleep(0.01)
            raise AssertionError(f"pid {proc.pid} never exec'd {argv0!r}")

        await_argv0(orphan, b"repro-orphan")
        await_argv0(stranger, b"sleep")
        state = tmp_path / "fleet.json"
        state.write_text(
            json.dumps(
                {
                    "shards": [
                        {"index": 0, "pid": orphan.pid, "port": 1},
                        {"index": 1, "pid": stranger.pid, "port": 2},
                        {"index": 2, "pid": 999999999, "port": 3},
                    ]
                }
            )
        )
        try:
            reaped = reap_stale(str(state))
            assert reaped == [orphan.pid]
            orphan.wait(timeout=5)
            assert stranger.poll() is None  # never kill a stranger
            assert not state.exists()
        finally:
            for proc in (orphan, stranger):
                try:
                    proc.kill()
                except OSError:
                    pass

    def test_missing_state_file_is_noop(self, tmp_path):
        assert reap_stale(str(tmp_path / "nope.json")) == []
