"""Shared fabric-test helpers: in-process fleets over the shard schemas.

The db factories come from the shard suite so the fabric is pinned
against exactly the workloads that pinned :class:`ShardedMonitor`.  A
:class:`ThreadFleet` gives every test a real server per shard (same
wire protocol, same journal-replay semantics) without paying a Python
subprocess spawn; only the e2e module boots actual subprocesses.
"""

from __future__ import annotations

from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.fabric import FabricMonitor, ThreadFleet
from repro.fabric.topology import copy_database

from tests.service.test_shard import parent_child_db, two_relation_db  # noqa: F401


def thread_fabric(db_factory, shards: int, **kwargs) -> FabricMonitor:
    """A FabricMonitor over an in-process fleet seeded from *db_factory*."""
    db = db_factory()
    fleet = ThreadFleet(
        lambda: ConstraintMonitor(DCSatChecker(copy_database(db))),
        shards=shards,
    )
    return FabricMonitor(db, fleet, **kwargs)
