"""ShardTopology: the routing plans behind both fleet executors."""

import pytest

from repro.errors import ReproError
from repro.fabric.topology import ShardTopology
from repro.relational.transaction import Transaction

from tests.fabric.conftest import parent_child_db, two_relation_db


def reg(topology, name, relations):
    return topology.place(name, frozenset(relations))


class TestPlacement:
    def test_decoupled_constraints_spread(self):
        topology = ShardTopology(two_relation_db(), shards=2)
        a = reg(topology, "a1", ["A"])
        b = reg(topology, "b1", ["B"])
        assert a.shard != b.shard

    def test_coupled_constraints_co_locate(self):
        topology = ShardTopology(parent_child_db(), shards=2)
        p = reg(topology, "p", ["Parent"])
        c = reg(topology, "c", ["Child"])  # ind-coupled to Parent
        d = reg(topology, "d", ["D"])
        assert p.shard == c.shard
        assert d.shard != p.shard

    def test_duplicate_name_rejected(self):
        topology = ShardTopology(two_relation_db(), shards=2)
        reg(topology, "x", ["A"])
        with pytest.raises(ReproError):
            reg(topology, "x", ["B"])

    def test_forget_placement_shrinks_footprint(self):
        topology = ShardTopology(two_relation_db(), shards=1)
        reg(topology, "a1", ["A"])
        reg(topology, "b1", ["B"])
        assert topology.slots[0].footprint == {"A", "B"}
        topology.forget_placement("b1")
        assert topology.slots[0].footprint == {"A"}
        with pytest.raises(ReproError):
            topology.slot_of("b1")


class TestRouting:
    def test_decoupled_op_skips_and_spanning_op_drains(self):
        topology = ShardTopology(two_relation_db(), shards=2)
        a = reg(topology, "a1", ["A"]).shard
        b = reg(topology, "b1", ["B"]).shard
        actions = topology.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
        by_shard = {action.shard: action for action in actions}
        assert not by_shard[a].skipped and by_shard[a].op is not None
        assert by_shard[b].skipped and by_shard[b].op is None
        assert len(topology.slots[b].skipped) == 1
        # A spanning co-write couples both shards and drains the backlog.
        actions = topology.issue(
            Transaction({"A": [(2, "s")], "B": [(2, "s")]}, tx_id="SPAN")
        )
        by_shard = {action.shard: action for action in actions}
        assert [op.payload.tx_id for op in by_shard[b].drained] == ["TA"]
        assert topology.slots[b].skipped == []
        assert topology.slots[b].flushes == 1

    def test_overflow_flush_carries_the_routed_op(self):
        topology = ShardTopology(two_relation_db(), shards=1, max_skipped=2)
        reg(topology, "a1", ["A"])
        drained_ids = []
        for i in range(4):
            actions = topology.issue(
                Transaction({"B": [(i, "x")]}, tx_id=f"TB{i}")
            )
            assert actions[0].skipped
            drained_ids.extend(op.payload.tx_id for op in actions[0].drained)
        # The third issue overflowed a backlog of two: all three drained,
        # the just-routed op included, in original global order.
        assert drained_ids == ["TB0", "TB1", "TB2"]
        assert len(topology.slots[0].skipped) == 1  # TB3 backlogged anew

    def test_touched_mirrors_shard_local_pending(self):
        # Shard 1 (battery B) never applied TA, so a commit of TB on it
        # must not reach relation A through the global pending set.
        topology = ShardTopology(two_relation_db(), shards=2)
        a = reg(topology, "a1", ["A"]).shard
        b = reg(topology, "b1", ["B"]).shard
        topology.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
        actions = topology.issue(Transaction({"B": [(1, "x")]}, tx_id="TB"))
        op = {action.shard: action for action in actions}[b].op
        assert op.touched == {"B"}
        assert topology.slots[b].pending == {"TB": frozenset({"B"})}
        assert topology.slots[a].pending == {"TA": frozenset({"A"})}

    def test_front_validates_before_routing(self):
        topology = ShardTopology(two_relation_db(), shards=2)
        reg(topology, "a1", ["A"])
        topology.issue(Transaction({"A": [(1, "x")]}, tx_id="T1"))
        with pytest.raises(ReproError):
            topology.issue(Transaction({"A": [(2, "y")]}, tx_id="T1"))
        with pytest.raises(ReproError):
            topology.commit("nope")
        with pytest.raises(ReproError):
            topology.absorb(Transaction({"Zzz": [(1,)]}, tx_id="X"))
        assert topology.pending_count() == 1
        assert topology.epoch == 1  # failed ops left no epoch bump


class TestRebalance:
    def test_coupling_groups_union_ind_closures(self):
        topology = ShardTopology(parent_child_db(), shards=2)
        reg(topology, "p", ["Parent"])
        reg(topology, "c", ["Child"])
        reg(topology, "d", ["D"])
        groups = {frozenset(group) for group in topology.coupling_groups()}
        assert groups == {frozenset({"p", "c"}), frozenset({"d"})}

    def test_rebalance_moves_heavy_groups_off_shared_shards(self):
        topology = ShardTopology(two_relation_db(), shards=2)
        # Both constraints land on shard 0: register the B constraint
        # while shard 0 is the only one with any footprint overlap.
        reg(topology, "a1", ["A"])
        reg(topology, "b1", ["B"])
        reg(topology, "a2", ["A"])
        # a2 co-located with a1; now force b1 onto their shard.
        source = topology.slot_of("b1")
        target = topology.slot_of("a1")
        topology.migrate("b1", target)
        assert topology.slot_of("b1") == target
        assert topology.slots[source].names == []
        # The A group is heavier: rebalance should send b1 back out.
        plans = topology.rebalance(costs={"a1": 10.0, "a2": 10.0, "b1": 1.0})
        moves = {(plan.name, plan.source, plan.target) for plan in plans}
        assert moves == {("b1", target, source)}

    def test_migrate_drains_target_backlog(self):
        topology = ShardTopology(two_relation_db(), shards=2)
        reg(topology, "a1", ["A"])
        reg(topology, "b1", ["B"])
        b_shard = topology.slot_of("b1")
        topology.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
        assert len(topology.slots[b_shard].skipped) == 1
        plan = topology.migrate("a1", b_shard)
        assert [op.payload.tx_id for op in plan.drained] == ["TA"]
        assert topology.slot_of("a1") == b_shard
        assert "A" in topology.slots[b_shard].footprint

    def test_migrate_to_same_shard_is_a_noop(self):
        topology = ShardTopology(two_relation_db(), shards=2)
        reg(topology, "a1", ["A"])
        home = topology.slot_of("a1")
        plan = topology.migrate("a1", home)
        assert plan.drained == [] and plan.source == plan.target == home

    def test_migrate_rejects_unknown_shard(self):
        topology = ShardTopology(two_relation_db(), shards=2)
        reg(topology, "a1", ["A"])
        with pytest.raises(ReproError):
            topology.migrate("a1", 7)
