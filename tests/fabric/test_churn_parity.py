"""Churn parity through the fabric: a :class:`FabricMonitor` routing the
trace to shard servers (each a ledger-maintained monitor behind the wire
protocol) must agree with a single fresh-recompute monitor after every
event — verdicts and witnesses survive the wire round trip intact.

Runs over an in-process :class:`ThreadFleet` (real servers, real
protocol, no subprocess spawn); ``REPRO_CHURN_EVENTS`` scales the trace.
"""

from __future__ import annotations

from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor

from tests.core.test_churn_parity import (
    CHURN_CONSTRAINTS,
    EVENTS,
    apply_event,
    churn_db,
    churn_events,
)
from tests.fabric.conftest import thread_fabric


def test_fabric_churn_parity():
    fabric = thread_fabric(churn_db, shards=2)
    mirror = ConstraintMonitor(DCSatChecker(churn_db()), incremental=False)
    try:
        for monitor in (fabric, mirror):
            for name, query in CHURN_CONSTRAINTS.items():
                monitor.register(name, query)
        dirty_reports = 0
        for index, (kind, payload) in enumerate(churn_events(31337, EVENTS)):
            apply_event(fabric, kind, payload)
            apply_event(mirror, kind, payload)
            if fabric.last_dirty_components:
                dirty_reports += 1
            for name in CHURN_CONSTRAINTS:
                lhs = fabric.status(name)
                rhs = mirror.status(name, use_subsumption=False)
                assert lhs.satisfied == rhs.satisfied, (
                    f"verdict diverged for {name!r} after event {index} "
                    f"({kind})"
                )
                assert lhs.witness == rhs.witness, (
                    f"witness diverged for {name!r} after event {index} "
                    f"({kind})"
                )
        # The shard servers' dirty-component payloads crossed the wire.
        assert dirty_reports > 0
    finally:
        fabric.close()
