"""End-to-end: real shard subprocesses behind a wire-served router.

The full fabric stack — ``repro serve`` subprocesses spawned by a
:class:`FleetSupervisor`, a :class:`FabricMonitor` router served over
the JSON-lines protocol, a stock :class:`ServiceClient` in front — plus
the chaos path: SIGKILL a shard mid-trace and require verdict parity
with a single in-process monitor, ``/healthz`` truthfully degrading to
503 while the shard is down, and ``/tracez`` showing shard-subprocess
spans grafted under the router's trace.
"""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro import serialize
from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.fabric import FabricMonitor, FleetSupervisor, ShardSpec
from repro.relational.transaction import Transaction
from repro.service.client import ServiceClient
from repro.service.server import ConstraintService, serve_in_thread

from tests.fabric.conftest import two_relation_db

pytestmark = pytest.mark.slow


Q_A = "q() <- A(k, 'x'), A(k, 'y')"
Q_B = "q() <- B(k, 'x'), B(k, 'y')"


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    db = two_relation_db()
    db_path = str(tmp_path_factory.mktemp("fabric") / "seed.json")
    serialize.dump(db, db_path)
    fleet = FleetSupervisor(ShardSpec(db_path=db_path), shards=2)
    fabric = FabricMonitor(two_relation_db(), fleet)
    handle = serve_in_thread(ConstraintService(fabric), http_port=0)
    client = ServiceClient(handle.host, handle.port, timeout=120.0)
    single = ConstraintMonitor(DCSatChecker(two_relation_db()))
    try:
        yield fabric, fleet, client, handle, single
    finally:
        client.close()
        handle.stop()
        fabric.close()


def http_get(handle, path):
    url = f"http://{handle.http_host}:{handle.http_port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def assert_parity(client, single):
    got = client.status_all()
    want = single.status_all()
    assert set(got) == set(want)
    for name, wire in got.items():
        assert wire["satisfied"] == want[name].satisfied, name
        witness = want[name].witness
        wire_witness = wire["witness"]
        assert (wire_witness is None) == (witness is None), name
        if witness is not None:
            assert set(wire_witness) == set(witness), name


def test_fleet_chaos_roundtrip(stack):
    fabric, fleet, client, handle, single = stack

    for name, query in (("a1", Q_A), ("b1", Q_B)):
        client.register(name, query)
        single.register(name, query)

    # Healthy fleet: /healthz is 200 and names no dead shards.
    status, payload = http_get(handle, "/healthz")
    assert status == 200
    assert payload["fleet"]["dead"] == []
    assert len(payload["fleet"]["shards"]) == 2

    # The router's extra scrape route: topology + liveness in one JSON.
    status, payload = http_get(handle, "/fabricz")
    assert status == 200
    assert payload["fabric"] is True
    assert {item["shard"] for item in payload["detail"]} == {0, 1}

    for i, (rel, value) in enumerate(
        [("A", "x"), ("A", "y"), ("B", "x"), ("B", "y")]
    ):
        got = client.issue(Transaction({rel: [(1, value)]}, tx_id=f"T{i}"))
        want = single.issue(Transaction({rel: [(1, value)]}, tx_id=f"T{i}"))
        assert got == want
    assert_parity(client, single)

    # SIGKILL one shard mid-trace.  The router must report it dead
    # (degraded /healthz, 503) until an op lazily revives it.
    victim = fabric.topology.slot_of("a1")
    fleet.kill(victim)
    status, payload = http_get(handle, "/healthz")
    assert status == 503
    assert payload["status"] == "degraded"
    assert payload["dead_shards"] == [victim]

    # The next touching op respawns the shard and replays its journal;
    # verdicts and invalidation lists stay identical to the single
    # monitor that never died.
    got = client.commit("T0")
    want = single.commit("T0")
    assert got == want
    status, payload = http_get(handle, "/healthz")
    assert status == 200
    assert payload["fleet"]["shards"][victim]["restarts"] == 1
    assert_parity(client, single)

    got = client.commit("T1")
    want = single.commit("T1")
    assert got == want
    assert_parity(client, single)
    assert not client.status("a1")["satisfied"]


def test_status_all_trace_spans_cross_processes(stack):
    fabric, fleet, client, handle, single = stack
    client.status_all()
    trace_id = client.last_trace_id
    assert trace_id is not None
    status, payload = http_get(handle, f"/tracez?trace_id={trace_id}")
    assert status == 200
    (trace,) = payload["traces"]
    spans = trace["spans"]
    names = {span["name"] for span in spans}
    assert "fabric.call" in names
    # Span ids embed the creating pid: the shard subprocesses' spans
    # keep theirs, proving the trace really crossed process boundaries.
    router_prefix = f"s{os.getpid():x}-"
    foreign = [s for s in spans if not s["span_id"].startswith(router_prefix)]
    assert foreign, "no shard-subprocess spans were adopted"
    shard_pids = {
        f"s{item['pid']:x}-" for item in fabric.fleet_health()["shards"]
    }
    assert {
        s["span_id"].split("-")[0] + "-" for s in foreign
    } <= shard_pids

    calls = {s["span_id"] for s in spans if s["name"] == "fabric.call"}
    adopted_roots = [s for s in foreign if s["parent_id"] in calls]
    assert adopted_roots, "shard spans were not re-parented under fabric.call"


def test_rebalance_over_the_wire(stack):
    fabric, fleet, client, handle, single = stack
    moved = client.rebalance()
    assert moved["shards"] == 2
    assert isinstance(moved["migrated"], list)
    assert_parity(client, single)
