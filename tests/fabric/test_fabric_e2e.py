"""End-to-end: real shard subprocesses behind a wire-served router.

The full fabric stack — ``repro serve`` subprocesses spawned by a
:class:`FleetSupervisor`, a :class:`FabricMonitor` router served over
the JSON-lines protocol, a stock :class:`ServiceClient` in front — plus
the chaos path: SIGKILL a shard mid-trace and require verdict parity
with a single in-process monitor, ``/healthz`` truthfully degrading to
503 while the shard is down, and ``/tracez`` showing shard-subprocess
spans grafted under the router's trace.
"""

import json
import os
import select
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro import serialize
from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.errors import FabricError
from repro.fabric import FabricMonitor, FleetSupervisor, ShardSpec
from repro.fabric.supervisor import READY_PREFIX, _repro_pythonpath
from repro.relational.transaction import Transaction
from repro.service.client import ServiceClient
from repro.service.server import ConstraintService, serve_in_thread

from tests.fabric.conftest import two_relation_db

pytestmark = pytest.mark.slow


Q_A = "q() <- A(k, 'x'), A(k, 'y')"
Q_B = "q() <- B(k, 'x'), B(k, 'y')"


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    db = two_relation_db()
    db_path = str(tmp_path_factory.mktemp("fabric") / "seed.json")
    serialize.dump(db, db_path)
    fleet = FleetSupervisor(ShardSpec(db_path=db_path), shards=2)
    fabric = FabricMonitor(two_relation_db(), fleet)
    handle = serve_in_thread(ConstraintService(fabric), http_port=0)
    client = ServiceClient(handle.host, handle.port, timeout=120.0)
    single = ConstraintMonitor(DCSatChecker(two_relation_db()))
    try:
        yield fabric, fleet, client, handle, single
    finally:
        client.close()
        handle.stop()
        fabric.close()


def http_get(handle, path):
    url = f"http://{handle.http_host}:{handle.http_port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def assert_parity(client, single):
    got = client.status_all()
    want = single.status_all()
    assert set(got) == set(want)
    for name, wire in got.items():
        assert wire["satisfied"] == want[name].satisfied, name
        witness = want[name].witness
        wire_witness = wire["witness"]
        assert (wire_witness is None) == (witness is None), name
        if witness is not None:
            assert set(wire_witness) == set(witness), name


def test_fleet_chaos_roundtrip(stack):
    fabric, fleet, client, handle, single = stack

    for name, query in (("a1", Q_A), ("b1", Q_B)):
        client.register(name, query)
        single.register(name, query)

    # Healthy fleet: /healthz is 200 and names no dead shards.
    status, payload = http_get(handle, "/healthz")
    assert status == 200
    assert payload["fleet"]["dead"] == []
    assert len(payload["fleet"]["shards"]) == 2

    # The router's extra scrape route: topology + liveness in one JSON.
    status, payload = http_get(handle, "/fabricz")
    assert status == 200
    assert payload["fabric"] is True
    assert {item["shard"] for item in payload["detail"]} == {0, 1}

    for i, (rel, value) in enumerate(
        [("A", "x"), ("A", "y"), ("B", "x"), ("B", "y")]
    ):
        got = client.issue(Transaction({rel: [(1, value)]}, tx_id=f"T{i}"))
        want = single.issue(Transaction({rel: [(1, value)]}, tx_id=f"T{i}"))
        assert got == want
    assert_parity(client, single)

    # SIGKILL one shard mid-trace.  The router must report it dead
    # (degraded /healthz, 503) until an op lazily revives it.
    victim = fabric.topology.slot_of("a1")
    fleet.kill(victim)
    status, payload = http_get(handle, "/healthz")
    assert status == 503
    assert payload["status"] == "degraded"
    assert payload["dead_shards"] == [victim]

    # The next touching op respawns the shard and replays its journal;
    # verdicts and invalidation lists stay identical to the single
    # monitor that never died.
    got = client.commit("T0")
    want = single.commit("T0")
    assert got == want
    status, payload = http_get(handle, "/healthz")
    assert status == 200
    assert payload["fleet"]["shards"][victim]["restarts"] == 1
    assert_parity(client, single)

    got = client.commit("T1")
    want = single.commit("T1")
    assert got == want
    assert_parity(client, single)
    assert not client.status("a1")["satisfied"]


def test_status_all_trace_spans_cross_processes(stack):
    fabric, fleet, client, handle, single = stack
    client.status_all()
    trace_id = client.last_trace_id
    assert trace_id is not None
    status, payload = http_get(handle, f"/tracez?trace_id={trace_id}")
    assert status == 200
    (trace,) = payload["traces"]
    spans = trace["spans"]
    names = {span["name"] for span in spans}
    assert "fabric.call" in names
    # Span ids embed the creating pid: the shard subprocesses' spans
    # keep theirs, proving the trace really crossed process boundaries.
    router_prefix = f"s{os.getpid():x}-"
    foreign = [s for s in spans if not s["span_id"].startswith(router_prefix)]
    assert foreign, "no shard-subprocess spans were adopted"
    shard_pids = {
        f"s{item['pid']:x}-" for item in fabric.fleet_health()["shards"]
    }
    assert {
        s["span_id"].split("-")[0] + "-" for s in foreign
    } <= shard_pids

    calls = {s["span_id"] for s in spans if s["name"] == "fabric.call"}
    adopted_roots = [s for s in foreign if s["parent_id"] in calls]
    assert adopted_roots, "shard spans were not re-parented under fabric.call"


def test_rebalance_over_the_wire(stack):
    fabric, fleet, client, handle, single = stack
    moved = client.rebalance()
    assert moved["shards"] == 2
    assert isinstance(moved["migrated"], list)
    assert_parity(client, single)


# ----------------------------------------------------------------------
# Router crash + --recover, end to end through the CLI.


def spawn_router(db_path, journal_dir, recover=False, timeout=120.0):
    """Launch ``repro fabric`` as a real subprocess and wait for its
    ready line.  Returns ``(process, host, port, pre_ready_lines)``."""
    argv = [
        sys.executable, "-m", "repro",
        "--log-level", "warning",
        "fabric", db_path,
        "--host", "127.0.0.1",
        "--port", "0",
        "--shards", "2",
        "--journal-dir", journal_dir,
        "--fsync", "always",
        "--watchdog-interval", "0",
    ]
    if recover:
        argv.append("--recover")
    env = dict(os.environ)
    env["PYTHONPATH"] = _repro_pythonpath()
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
        start_new_session=True,
    )
    fd = process.stdout.fileno()
    deadline = time.monotonic() + timeout
    buffered, lines = "", []
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0 or process.poll() is not None:
            process.kill()
            process.wait()
            raise AssertionError(
                f"router never became ready; output so far: {lines!r}"
            )
        readable, _, _ = select.select([fd], [], [], min(remaining, 0.25))
        if not readable:
            continue
        chunk = os.read(fd, 4096).decode("utf-8", "replace")
        if not chunk:
            process.kill()
            process.wait()
            raise AssertionError(
                f"router closed stdout before ready: {lines!r}"
            )
        buffered += chunk
        while "\n" in buffered:
            line, buffered = buffered.split("\n", 1)
            lines.append(line)
            if line.startswith(READY_PREFIX):
                address = line[len(READY_PREFIX):].split(" ", 1)[0]
                host, _, port = address.rpartition(":")
                return process, host, int(port), lines


def test_router_sigkill_then_recover_matches_single_monitor(tmp_path):
    """The acceptance scenario: SIGKILL the router mid-workload, restart
    it with ``--recover``, and every verdict — plus the whole
    ``status_all`` surface — matches a single uninterrupted monitor."""
    db_path = str(tmp_path / "seed.json")
    serialize.dump(two_relation_db(), db_path)
    journal_dir = str(tmp_path / "journal")
    single = ConstraintMonitor(DCSatChecker(two_relation_db()))

    router, host, port, _ = spawn_router(db_path, journal_dir)
    survivor = None
    try:
        with ServiceClient(host, port, timeout=120.0) as client:
            for name, query in (("a1", Q_A), ("b1", Q_B)):
                client.register(name, query)
                single.register(name, query)
            for i, (rel, value) in enumerate(
                [("A", "x"), ("A", "y"), ("B", "x"), ("B", "y")]
            ):
                tx = Transaction({rel: [(1, value)]}, tx_id=f"T{i}")
                assert client.issue(tx) == single.issue(tx)
            assert client.commit("T0") == single.commit("T0")
            assert_parity(client, single)

        # Mid-workload murder: no drain, no flush beyond what the
        # journal already forced (fsync=always), shard subprocesses
        # orphaned in their own sessions.
        os.kill(router.pid, signal.SIGKILL)
        router.wait()

        survivor, host, port, lines = spawn_router(
            db_path, journal_dir, recover=True
        )
        assert any("reaped" in line for line in lines), lines
        assert any("recovered" in line for line in lines), lines

        with ServiceClient(host, port, timeout=120.0) as client:
            # Everything journaled before the kill is back.
            assert_parity(client, single)
            # And the recovered router keeps agreeing as work continues.
            assert client.commit("T1") == single.commit("T1")
            assert client.status("a1")["satisfied"] is False
            tx = Transaction({"B": [(2, "x")]}, tx_id="T9")
            assert client.issue(tx) == single.issue(tx)
            assert client.forget("T9") == single.forget("T9")
            assert_parity(client, single)
            client.shutdown_server()
        survivor.wait(timeout=60.0)
        assert survivor.returncode == 0
        survivor = None
    finally:
        for process in (router, survivor):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait()
        from repro.fabric import FabricJournal, reap_stale

        reap_stale(FabricJournal(journal_dir).fleet_state_path)


def test_fabric_rejects_stale_journal_without_recover_flag(tmp_path):
    """Restarting over an existing journal without ``--recover`` must
    refuse loudly instead of silently shadowing durable state."""
    db_path = str(tmp_path / "seed.json")
    serialize.dump(two_relation_db(), db_path)
    journal_dir = str(tmp_path / "journal")
    from repro.fabric import FabricJournal

    FabricJournal(journal_dir, shards=2).close()
    env = dict(os.environ)
    env["PYTHONPATH"] = _repro_pythonpath()
    done = subprocess.run(
        [
            sys.executable, "-m", "repro", "fabric", db_path,
            "--port", "0", "--shards", "2", "--journal-dir", journal_dir,
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=60.0,
    )
    assert done.returncode == 2
    assert "--recover" in done.stdout


# ----------------------------------------------------------------------
# Spawn-failure hardening: a shard that dies, goes mute, or floods
# stdout before its ready line must surface as a FabricError carrying
# its stderr — never a hang until the spawn timeout.


class ScriptSpec(ShardSpec):
    """A shard spec whose argv is an arbitrary ``python -c`` script."""

    def __init__(self, code):
        super().__init__(db_path="unused")
        self.code = code

    def argv(self):
        return [sys.executable, "-u", "-c", self.code]


class TestSpawnFailure:
    def test_shard_exiting_before_ready_raises_with_stderr(self, tmp_path):
        missing = str(tmp_path / "no-such-db.json")
        fleet = FleetSupervisor(
            ShardSpec(db_path=missing), shards=1, spawn_timeout=60.0
        )
        start = time.monotonic()
        with pytest.raises(FabricError) as excinfo:
            fleet.start()
        assert time.monotonic() - start < 30.0  # reaped, not timed out
        assert excinfo.value.code == "spawn-failed"
        # EOF and exit race: either diagnosis is truthful, both carry
        # the stderr tail.
        message = str(excinfo.value)
        assert "exited with status" in message or "closed stdout" in message
        # The child's traceback rode along for the post-mortem.
        assert excinfo.value.stderr
        assert "no-such-db.json" in excinfo.value.stderr

    def test_shard_closing_stdout_before_ready_is_reaped(self):
        spec = ScriptSpec(
            "import sys, time, os; print('boom', file=sys.stderr); "
            "sys.stderr.flush(); os.close(1); time.sleep(60)"
        )
        fleet = FleetSupervisor(spec, shards=1, spawn_timeout=60.0)
        start = time.monotonic()
        with pytest.raises(FabricError) as excinfo:
            fleet.start()
        assert time.monotonic() - start < 30.0
        assert excinfo.value.code == "spawn-failed"
        assert "closed stdout" in str(excinfo.value)
        assert "boom" in (excinfo.value.stderr or "")
        assert not fleet.alive(0)  # the sleeping child was killed

    def test_shard_flooding_stdout_is_cut_off(self):
        spec = ScriptSpec(
            "while True:\n print('x' * 1024)"
        )
        fleet = FleetSupervisor(spec, shards=1, spawn_timeout=60.0)
        start = time.monotonic()
        with pytest.raises(FabricError) as excinfo:
            fleet.start()
        assert time.monotonic() - start < 30.0
        assert excinfo.value.code == "spawn-failed"
        assert "without a ready line" in str(excinfo.value)
        assert not fleet.alive(0)
