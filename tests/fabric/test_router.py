"""FabricMonitor over an in-process fleet: parity with one monitor,
journal-replay recovery, rebalance execution, liveness reporting."""

import random

import pytest

from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.errors import ReproError
from repro.obs.trace import default_tracer
from repro.relational.transaction import Transaction

from tests.fabric.conftest import parent_child_db, thread_fabric, two_relation_db


class FabricRunner:
    """Drive a FabricMonitor and a single ConstraintMonitor in lockstep,
    asserting invalidation lists and verdicts stay identical — including
    across shard kills injected mid-trace."""

    def __init__(self, db_factory, shards: int):
        self.fabric = thread_fabric(db_factory, shards=shards)
        self.single = ConstraintMonitor(DCSatChecker(db_factory()))

    def register(self, name, query):
        self.fabric.register(name, query)
        self.single.register(name, query)

    def op(self, kind, payload):
        got = getattr(self.fabric, kind)(payload)
        want = getattr(self.single, kind)(payload)
        assert got == want, f"{kind}: invalidated {got} != {want}"

    def kill(self, shard: int):
        self.fabric._fleet.kill(shard)

    def check_verdicts(self):
        got = self.fabric.status_all()
        want = self.single.status_all()
        assert set(got) == set(want)
        for name in want:
            assert got[name].satisfied == want[name].satisfied, name
            assert got[name].witness == want[name].witness, name

    def close(self):
        self.fabric.close()


@pytest.fixture
def decoupled_runner():
    runner = FabricRunner(two_relation_db, shards=2)
    yield runner
    runner.close()


@pytest.fixture
def coupled_runner():
    runner = FabricRunner(parent_child_db, shards=2)
    yield runner
    runner.close()


class TestParity:
    def test_ind_coupled_commit_flip(self, coupled_runner):
        runner = coupled_runner
        runner.register("no-child", "q() <- Child(c, p, t)")
        runner.register("d-conflict", "q() <- D(k, 'x'), D(k, 'y')")
        runner.op("issue", Transaction({"Parent": [(1, "x")]}, tx_id="TP"))
        runner.op("issue", Transaction({"Parent": [(1, "y")]}, tx_id="TQ"))
        runner.op("issue", Transaction({"Child": [(10, 1, "x")]}, tx_id="TC"))
        runner.check_verdicts()
        assert not runner.fabric.status("no-child").satisfied
        runner.op("commit", "TQ")
        runner.check_verdicts()
        assert runner.fabric.status("no-child").satisfied

    def test_unregister_and_reregister(self, decoupled_runner):
        runner = decoupled_runner
        runner.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        runner.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        runner.op("issue", Transaction({"A": [(1, "x")]}, tx_id="TA"))
        runner.fabric.unregister("a1")
        runner.single.unregister("a1")
        assert runner.fabric.names == ("b1",)
        runner.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        runner.check_verdicts()
        with pytest.raises(ReproError):
            runner.fabric.unregister("ghost")

    @pytest.mark.parametrize("seed", [7, 23])
    @pytest.mark.parametrize("shards", [2, 3])
    def test_randomized_traces_with_kills(self, seed, shards):
        rng = random.Random(seed)
        runner = FabricRunner(two_relation_db, shards=shards)
        try:
            runner.register("a-conflict", "q() <- A(k, 'x'), A(k, 'y')")
            runner.register("b-conflict", "q() <- B(k, 'x'), B(k, 'y')")
            self._drive(rng, runner, relations=["A", "B"], steps=25, shards=shards)
        finally:
            runner.close()

    @pytest.mark.parametrize("seed", [3])
    def test_randomized_traces_ind_coupled(self, seed):
        rng = random.Random(seed)
        runner = FabricRunner(parent_child_db, shards=2)
        try:
            runner.register("no-child", "q() <- Child(c, p, t)")
            runner.register("d-conflict", "q() <- D(k, 'x'), D(k, 'y')")
            next_id = 0
            for step in range(20):
                pending = list(runner.single.checker.db.pending_ids)
                roll = rng.random()
                if roll < 0.5 or not pending:
                    next_id += 1
                    kind = rng.random()
                    if kind < 0.4:
                        facts = {"Parent": [(rng.randrange(4), rng.choice("xy"))]}
                    elif kind < 0.7:
                        facts = {
                            "Child": [(next_id, rng.randrange(4), rng.choice("xy"))]
                        }
                    else:
                        facts = {"D": [(rng.randrange(3), rng.choice("xy"))]}
                    runner.op("issue", Transaction(facts, tx_id=f"T{next_id}"))
                elif roll < 0.75:
                    runner.op("commit", rng.choice(pending))
                else:
                    runner.op("forget", rng.choice(pending))
                if step == 9:
                    runner.kill(rng.randrange(2))
                runner.check_verdicts()
        finally:
            runner.close()

    def _drive(self, rng, runner, relations, steps, shards):
        next_id = 0
        for step in range(steps):
            pending = list(runner.single.checker.db.pending_ids)
            roll = rng.random()
            if roll < 0.45 or not pending:
                next_id += 1
                if rng.random() < 0.2:  # spanning co-write
                    facts = {
                        rel: [(rng.randrange(4), rng.choice("xy"))]
                        for rel in relations
                    }
                else:
                    rel = rng.choice(relations)
                    facts = {rel: [(rng.randrange(4), rng.choice("xy"))]}
                runner.op("issue", Transaction(facts, tx_id=f"T{next_id}"))
            elif roll < 0.65:
                runner.op("commit", rng.choice(pending))
            elif roll < 0.80:
                runner.op("forget", rng.choice(pending))
            else:
                next_id += 1
                rel = rng.choice(relations)
                runner.op(
                    "absorb",
                    Transaction({rel: [(100 + next_id, "z")]}, tx_id=f"X{next_id}"),
                )
            # A SIGKILL-equivalent mid-trace: the next touching op must
            # respawn the shard and replay its journal transparently.
            if step % 8 == 5:
                runner.kill(rng.randrange(shards))
            runner.check_verdicts()


class TestRecovery:
    def test_dead_shard_reported_then_revived_lazily(self, decoupled_runner):
        runner = decoupled_runner
        runner.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        runner.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        runner.op("issue", Transaction({"A": [(1, "x")]}, tx_id="TA"))
        victim = runner.fabric.topology.slot_of("a1")
        runner.kill(victim)
        health = runner.fabric.fleet_health()
        assert health["dead"] == [victim]
        assert not health["ok"]
        # The next op through the shard revives it from the journal.
        runner.op("issue", Transaction({"A": [(1, "y")]}, tx_id="TB"))
        health = runner.fabric.fleet_health()
        assert health["dead"] == []
        assert health["shards"][victim]["restarts"] == 1
        runner.check_verdicts()
        runner.op("commit", "TA")
        runner.op("commit", "TB")
        runner.check_verdicts()
        assert not runner.fabric.status("a1").satisfied

    def test_cached_invalidations_survive_restart(self, decoupled_runner):
        # The regression the router-side mirror exists for: a respawned
        # shard has no cached verdicts, so shard-reported invalidation
        # would be empty; the router must still report the names.
        runner = decoupled_runner
        runner.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        runner.check_verdicts()  # caches the verdict on both sides
        victim = runner.fabric.topology.slot_of("a1")
        runner.kill(victim)
        runner.op("issue", Transaction({"A": [(1, "x")]}, tx_id="TA"))

    def test_revives_and_replays_are_counted(self):
        from repro.service.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        fabric = thread_fabric(two_relation_db, shards=2, metrics=metrics)
        try:
            fabric.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
            fabric.issue(Transaction({"A": [(1, "x")]}, tx_id="TA"))
            victim = fabric.topology.slot_of("a1")
            fabric._fleet.kill(victim)
            fabric.issue(Transaction({"A": [(1, "y")]}, tx_id="TB"))
            labels = {"shard": str(victim)}
            assert metrics.value("repro_fabric_revives_total", labels) == 1
            # Journal-before-send: TB was recorded before the send hit
            # the dead shard, so the replay carries the registration,
            # TA, and TB itself.
            assert metrics.value("repro_fabric_replayed_ops_total", labels) == 3
            assert metrics.value("repro_fabric_revives_total") is None
        finally:
            fabric.close()

    def test_journal_grows_with_applied_ops_only(self, decoupled_runner):
        runner = decoupled_runner
        runner.register("a1", "q() <- A(k, v)")
        runner.register("b1", "q() <- B(k, v)")
        runner.op("issue", Transaction({"A": [(1, "x")]}, tx_id="TA"))
        a_shard = runner.fabric._shards[runner.fabric.topology.slot_of("a1")]
        b_shard = runner.fabric._shards[runner.fabric.topology.slot_of("b1")]
        assert [r["op"] for r in a_shard.journal if r["k"] == "op"] == [
            "register",
            "issue",
        ]
        # The decoupled shard never saw the issue: backlogged (a skip
        # record for recovery), not sent as an applied op.
        assert [r["op"] for r in b_shard.journal if r["k"] == "op"] == ["register"]
        assert [r["op"] for r in b_shard.journal if r["k"] == "skip"] == ["issue"]


class TestRebalance:
    def test_rebalance_migrates_and_preserves_verdicts(self, decoupled_runner):
        runner = decoupled_runner
        runner.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        runner.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        for i in range(2):
            runner.op("issue", Transaction({"A": [(i, "x")]}, tx_id=f"TA{i}"))
            runner.op("issue", Transaction({"A": [(i, "y")]}, tx_id=f"TB{i}"))
        # Pack both constraints onto one shard, then let the recorded
        # solve costs pull them apart again.
        topology = runner.fabric.topology
        target = topology.slot_of("a1")
        source = topology.slot_of("b1")
        plan = topology.migrate("b1", target)
        runner.fabric._drain(
            runner.fabric._shards[target], plan.drained, plan.retained
        )
        runner.fabric._apply_wire(
            runner.fabric._shards[target],
            "register",
            {"name": "b1", "query": str(runner.fabric.entry("b1").query)},
        )
        runner.fabric._apply_wire(
            runner.fabric._shards[source], "unregister", {"name": "b1"}
        )
        runner.check_verdicts()  # record per-constraint solve costs
        moved = runner.fabric.rebalance()
        assert {m["name"] for m in moved["migrated"]} == {"b1"}
        assert topology.slot_of("b1") == source
        runner.check_verdicts()
        runner.op("issue", Transaction({"B": [(1, "x")]}, tx_id="TBX"))
        runner.op("issue", Transaction({"B": [(1, "y")]}, tx_id="TBY"))
        runner.check_verdicts()


class TestObservability:
    def test_status_all_adopts_shard_spans(self, decoupled_runner):
        runner = decoupled_runner
        runner.register("a1", "q() <- A(k, 'x'), A(k, 'y')")
        runner.register("b1", "q() <- B(k, 'x'), B(k, 'y')")
        runner.op("issue", Transaction({"A": [(1, "x")]}, tx_id="TA"))
        tracer = default_tracer()
        with tracer.trace("fabric-test") as root:
            runner.fabric.status_all()
        trace = tracer.find(root.trace_id)
        names = [span["name"] for span in trace["spans"]]
        assert "fabric.call" in names
        # Shard-side request spans were exported over the wire and
        # grafted under the router's fabric.call span.
        assert "request" in names
        calls = [s for s in trace["spans"] if s["name"] == "fabric.call"]
        requests = [s for s in trace["spans"] if s["name"] == "request"]
        assert {r["parent_id"] for r in requests} <= {c["span_id"] for c in calls}

    def test_describe_and_gauges(self, decoupled_runner):
        from repro.service.metrics import MetricsRegistry

        runner = decoupled_runner
        runner.register("a1", "q() <- A(k, v)")
        info = runner.fabric.describe()
        assert info["fabric"] is True and info["sharded"] is True
        assert all("alive" in item for item in info["detail"])
        metrics = MetricsRegistry()
        runner.fabric.export_gauges(metrics)
        text = metrics.render_text()
        assert 'repro_fabric_shard_alive{shard="0"} 1' in text
        assert "repro_fabric_shard_journal_ops" in text
