"""The durable write-ahead journal: framing, torn tails vs corruption,
segment rollover, snapshot+truncate compaction, fsync modes, revokes."""

import os

import pytest

from repro.errors import FabricError
from repro.fabric.journal import (
    FabricJournal,
    ShardJournal,
    decode_segment,
    encode_record,
)


def rec(g, k="op", op="issue", **extra):
    record = {"g": g, "k": k, "op": op, "args": {"tx_id": f"T{g}"}}
    record.update(extra)
    return record


def wal_paths(journal: ShardJournal) -> list[str]:
    return sorted(
        os.path.join(journal.directory, name)
        for name in os.listdir(journal.directory)
        if name.startswith("wal-")
    )


class TestFraming:
    def test_roundtrip(self):
        records = [rec(1), rec(2, k="skip", rels=["A"]), rec(3, op="commit")]
        data = b"".join(encode_record(r) for r in records)
        decoded, torn = decode_segment(data)
        assert decoded == records
        assert torn == 0

    def test_frame_is_length_crc_json(self):
        line = encode_record({"g": 1, "k": "op", "op": "ping", "args": {}})
        length, crc, payload = line.split(b" ", 2)
        assert int(length) == len(payload) - 1  # trailing newline
        assert len(crc) == 8

    def test_torn_tail_is_dropped_not_fatal(self):
        data = encode_record(rec(1)) + encode_record(rec(2))
        full = len(encode_record(rec(2)))
        for cut in range(1, full):
            decoded, torn = decode_segment(data[: len(data) - cut])
            assert decoded == [rec(1)]
            assert torn == full - cut

    def test_flipped_byte_in_final_record_counts_as_torn(self):
        # A payload that reached disk only partially can fail its CRC
        # without being short; at EOF that is still a crash artifact.
        data = bytearray(encode_record(rec(1)) + encode_record(rec(2)))
        data[-3] ^= 0xFF
        decoded, torn = decode_segment(bytes(data))
        assert decoded == [rec(1)]
        assert torn > 0

    def test_mid_file_damage_raises(self):
        data = bytearray(
            encode_record(rec(1)) + encode_record(rec(2)) + encode_record(rec(3))
        )
        middle = len(encode_record(rec(1))) + 5
        data[middle] ^= 0xFF
        with pytest.raises(FabricError) as excinfo:
            decode_segment(bytes(data))
        assert excinfo.value.code == "journal-corrupt"

    def test_garbage_header_raises(self):
        with pytest.raises(FabricError):
            decode_segment(b"not a frame at all\n" + encode_record(rec(1)))


class TestShardJournal:
    def test_append_load_roundtrip(self, tmp_path):
        journal = ShardJournal(str(tmp_path / "s0"), fsync="never")
        for g in range(5):
            journal.append(rec(g))
        loaded = journal.load()
        assert loaded.records == [rec(g) for g in range(5)]
        assert loaded.torn_bytes == 0

    def test_segment_rollover(self, tmp_path):
        journal = ShardJournal(
            str(tmp_path / "s0"), fsync="never", segment_bytes=128
        )
        for g in range(20):
            journal.append(rec(g))
        assert journal.segment_count > 1
        assert journal.load().records == [rec(g) for g in range(20)]

    def test_restart_opens_fresh_segment(self, tmp_path):
        path = str(tmp_path / "s0")
        first = ShardJournal(path, fsync="never")
        first.append(rec(1))
        first.close()
        second = ShardJournal(path, fsync="never")
        second.append(rec(2))
        assert second.segment_count == 2
        assert second.load().records == [rec(1), rec(2)]

    def test_torn_tail_survives_reload(self, tmp_path):
        journal = ShardJournal(str(tmp_path / "s0"), fsync="always")
        journal.append(rec(1))
        journal.append(rec(2))
        journal.close()
        last = wal_paths(journal)[-1]
        with open(last, "r+b") as handle:
            handle.truncate(os.path.getsize(last) - 4)
        loaded = journal.load()
        assert loaded.records == [rec(1)]
        assert loaded.torn_bytes > 0

    def test_snapshot_truncates_history(self, tmp_path):
        journal = ShardJournal(
            str(tmp_path / "s0"), fsync="never", segment_bytes=128
        )
        for g in range(20):
            journal.append(rec(g))
        before = journal.bytes
        journal.write_snapshot([rec(19)])
        assert journal.bytes < before
        assert journal.segment_count == 1  # the snapshot alone
        assert journal.load().records == [rec(19)]

    def test_appends_after_snapshot_are_read_after_it(self, tmp_path):
        journal = ShardJournal(str(tmp_path / "s0"), fsync="never")
        journal.append(rec(1))
        journal.write_snapshot([rec(1)])
        journal.append(rec(2))
        assert journal.load().records == [rec(1), rec(2)]

    def test_stale_snapshot_tmp_is_ignored(self, tmp_path):
        # A crash between writing the temp file and the rename must
        # leave the pre-compaction history authoritative.
        journal = ShardJournal(str(tmp_path / "s0"), fsync="never")
        journal.append(rec(1))
        journal.flush()
        with open(tmp_path / "s0" / "snap-0000000009.jsonl.tmp", "wb") as fh:
            fh.write(b"half a snapsh")
        assert journal.load().records == [rec(1)]

    def test_revoked_op_is_not_replayed(self, tmp_path):
        journal = ShardJournal(str(tmp_path / "s0"), fsync="never")
        journal.append(rec(1))
        journal.append(rec(2))
        journal.append({"g": 2, "k": "revoke", "op": "issue"})
        assert journal.load().records == [rec(1)]

    @pytest.mark.parametrize("mode", ["always", "batch", "never"])
    def test_fsync_modes_all_roundtrip(self, tmp_path, mode):
        journal = ShardJournal(str(tmp_path / "s0"), fsync=mode, sync_every=2)
        for g in range(5):
            journal.append(rec(g))
        journal.flush()
        assert journal.load().records == [rec(g) for g in range(5)]

    def test_unknown_fsync_mode_rejected(self, tmp_path):
        with pytest.raises(FabricError):
            ShardJournal(str(tmp_path / "s0"), fsync="sometimes")


class TestFabricJournal:
    def test_shard_count_is_pinned(self, tmp_path):
        path = str(tmp_path / "j")
        FabricJournal(path, shards=3).close()
        assert FabricJournal.exists(path)
        reopened = FabricJournal(path)  # count read back from metadata
        assert reopened.count == 3
        reopened.close()
        with pytest.raises(FabricError) as excinfo:
            FabricJournal(path, shards=2)
        assert excinfo.value.code == "journal-mismatch"

    def test_missing_metadata_needs_count(self, tmp_path):
        with pytest.raises(FabricError):
            FabricJournal(str(tmp_path / "fresh"))

    def test_per_shard_isolation(self, tmp_path):
        journal = FabricJournal(str(tmp_path / "j"), shards=2, fsync="never")
        journal.append(0, rec(1))
        journal.append(1, rec(2))
        journal.append(1, rec(3))
        loaded = journal.load_all()
        assert [r["g"] for r in loaded[0].records] == [1]
        assert [r["g"] for r in loaded[1].records] == [2, 3]
        assert journal.bytes > 0
        journal.close()
