"""The perf telemetry plane: cost-model learning and prediction, the
solver pool's cost-aware group planning, and build-info stamping."""

from __future__ import annotations

import pytest

from repro.core.checker import DCSatChecker
from repro.obs.perf import (
    CostModel,
    bucket_label,
    build_info,
    default_cost_model,
    git_rev,
    size_bucket,
)
from repro.service.metrics import MetricsRegistry
from repro.service.pool import SolverPool, group_imbalance

from tests.service.conftest import component_db


class TestBuckets:
    def test_power_of_two_buckets(self):
        assert size_bucket(0) == 0
        assert size_bucket(1) == 1
        assert size_bucket(2) == 2
        assert size_bucket(3) == 2
        assert size_bucket(8) == 4
        assert size_bucket(12) == 4
        assert size_bucket(15) == 4
        assert size_bucket(16) == 5

    def test_labels(self):
        assert bucket_label(0) == "0"
        assert bucket_label(1) == "1"
        assert bucket_label(2) == "2-3"
        assert bucket_label(4) == "8-15"


class TestCostModel:
    def model(self, **kwargs) -> CostModel:
        kwargs.setdefault("export_metrics", False)
        return CostModel(**kwargs)

    def test_cold_model_predicts_nothing(self):
        model = self.model()
        assert model.predict(10) is None
        assert not model.warm
        assert model.observations == 0

    def test_first_observation_seeds_the_estimate(self):
        model = self.model()
        model.observe(0.5, 12, engine="sync", planner="set")
        assert model.predict(12, engine="sync", planner="set") == 0.5
        assert model.observations == 1

    def test_ewma_moves_toward_new_samples(self):
        model = self.model(alpha=0.5)
        model.observe(1.0, 12, engine="sync", planner="set")
        model.observe(3.0, 12, engine="sync", planner="set")
        assert model.predict(12, engine="sync", planner="set") == pytest.approx(2.0)

    def test_warm_after_threshold(self):
        model = self.model(warm_after=3)
        for _ in range(2):
            model.observe(0.1, 4)
        assert not model.warm
        model.observe(0.1, 4)
        assert model.warm

    def test_prediction_scales_from_the_nearest_bucket(self):
        model = self.model()
        model.observe(1.0, 8, engine="sync", planner="set")
        # No 64-bucket estimate: fall back to the 8-15 bucket, scaled
        # linearly by the size ratio.
        assert model.predict(64, engine="sync", planner="set") == pytest.approx(
            8.0
        )
        # And downward, toward tiny components.
        assert model.predict(2, engine="sync", planner="set") == pytest.approx(
            0.25
        )

    def test_prediction_prefers_matching_engine_and_planner(self):
        model = self.model()
        model.observe(1.0, 8, engine="sync", planner="set")
        model.observe(100.0, 8, engine="batched", planner="bitset")
        assert model.predict(8, engine="sync", planner="set") == 1.0
        assert model.predict(8, engine="batched", planner="bitset") == 100.0
        # An unknown pair still answers from whatever the model holds.
        assert model.predict(8, engine="async", planner="set") is not None

    def test_snapshot_shape(self):
        model = self.model(warm_after=1)
        model.observe(0.25, 12, engine="sync", planner="set", cliques=7)
        snap = model.snapshot()
        assert snap["observations"] == 1
        assert snap["warm"] is True
        assert snap["warm_after"] == 1
        row = snap["estimates"][0]
        assert row["size_bucket"] == "8-15"
        assert row["engine"] == "sync"
        assert row["planner"] == "set"
        assert row["ewma_seconds"] == 0.25
        assert row["ewma_cliques"] == 7.0
        assert row["samples"] == 1

    def test_reset_drops_history(self):
        model = self.model(warm_after=1)
        model.observe(0.25, 12)
        model.reset()
        assert model.observations == 0
        assert model.predict(12) is None

    def test_ingest_reads_stats_fields(self):
        from repro.core.results import DCSatStats

        model = self.model()
        stats = DCSatStats(engine="sync", elapsed_seconds=0.75, cliques_enumerated=9)
        model.ingest(stats, size=5, planner="bitset")
        assert model.predict(5, engine="sync", planner="bitset") == 0.75
        model.ingest(stats, size=5, planner="bitset", seconds=0.25)
        assert model.observations == 2

    def test_observations_export_to_the_default_registry(self):
        from repro.service import metrics as metrics_module

        registry = MetricsRegistry()
        original = metrics_module._DEFAULT_REGISTRY
        metrics_module._DEFAULT_REGISTRY = registry
        try:
            model = CostModel(export_metrics=True)
            model.observe(0.5, 12, engine="sync", planner="set")
        finally:
            metrics_module._DEFAULT_REGISTRY = original
        text = registry.render_text()
        assert (
            'repro_cost_model_estimate_seconds{bucket="8-15",engine="sync",'
            'mode="sweep",planner="set"} 0.5' in text
        )
        assert "repro_cost_model_observations_total 1" in text

    def test_default_cost_model_is_process_wide(self):
        assert default_cost_model() is default_cost_model()


class TestGroupImbalance:
    def test_balanced_is_zero(self):
        assert group_imbalance([1.0, 1.0, 1.0]) == 0.0
        assert group_imbalance([]) == 0.0
        assert group_imbalance([0.0, 0.0]) == 0.0

    def test_skew_measured_against_the_mean(self):
        # loads 3,1,1,1 -> mean 1.5, max 3 -> (3-1.5)/1.5 = 1.0
        assert group_imbalance([3.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)


class TestPlanGroups:
    """Group planning is pure — no executor is ever built here."""

    @pytest.fixture()
    def pool(self):
        checker = DCSatChecker(component_db(components=1, keys=1))
        model = CostModel(export_metrics=False, warm_after=1)
        pool = SolverPool(checker, max_workers=4, cost_model=model)
        yield pool
        pool.shutdown()
        checker.close()

    @staticmethod
    def survivors(sizes):
        return [{f"t{i}-{j}" for j in range(size)} for i, size in enumerate(sizes)]

    def test_cold_model_round_robins(self, pool):
        pool.cost_model.reset()
        groups, strategy, loads = pool.plan_groups(self.survivors([2] * 8))
        assert strategy == "round-robin"
        assert groups == [[0, 4], [1, 5], [2, 6], [3, 7]]
        assert loads == [0.0] * 4

    def test_warm_model_packs_the_giant_alone(self, pool):
        # Teach the model that cost is roughly linear in size.
        for size in (2, 16, 64):
            pool.cost_model.observe(
                size / 10.0, size,
                engine=pool._engine_name, planner=pool._planner_name,
            )
        # One giant (64) and six tiny (2) components: round-robin would
        # stripe two tinies alongside the giant; cost packing isolates it.
        groups, strategy, loads = pool.plan_groups(self.survivors([64] + [2] * 6))
        assert strategy == "cost"
        giant_group = next(group for group in groups if 0 in group)
        assert giant_group == [0]
        assert sorted(index for group in groups for index in group) == list(
            range(7)
        )
        assert group_imbalance(loads) < group_imbalance(
            [64 / 10.0 + 2 * 2 / 10.0, 2 * 2 / 10.0, 2 * 2 / 10.0, 0.0]
        )

    def test_groups_hold_ascending_indices(self, pool):
        for size in (2, 8, 32):
            pool.cost_model.observe(
                size / 10.0, size,
                engine=pool._engine_name, planner=pool._planner_name,
            )
        groups, _, _ = pool.plan_groups(self.survivors([32, 2, 8, 2, 32, 8]))
        for group in groups:
            assert group == sorted(group)

    def test_forced_strategy_overrides_the_model(self, pool):
        pool.cost_model.observe(
            1.0, 4, engine=pool._engine_name, planner=pool._planner_name
        )
        groups, strategy, _ = pool.plan_groups(
            self.survivors([4] * 6), strategy="round-robin"
        )
        assert strategy == "round-robin"
        assert groups == [[0, 4], [1, 5], [2], [3]]

    def test_more_workers_than_components(self, pool):
        groups, _, _ = pool.plan_groups(self.survivors([2, 2]))
        assert groups == [[0], [1]]


class TestBuildInfo:
    def test_git_rev_in_this_checkout(self):
        rev = git_rev()
        assert rev != "unknown"
        assert len(rev) >= 7

    def test_git_rev_outside_a_checkout(self, tmp_path):
        assert git_rev(cwd=str(tmp_path)) == "unknown"

    def test_build_info_shape_and_caching(self):
        info = build_info()
        assert set(info) == {"git_rev", "version", "python"}
        assert info["version"]
        # Returns a copy: mutating one call must not leak into the next.
        info["git_rev"] = "mutated"
        assert build_info()["git_rev"] != "mutated"
