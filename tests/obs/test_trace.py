"""The span tracer: nesting, the recent-trace ring, cross-process
adoption, cross-thread activation, and the ASCII renderer."""

from __future__ import annotations

import threading

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    default_tracer,
    render_tree,
    span as default_span,
)


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


def span_names(trace: dict) -> list[str]:
    return [s["name"] for s in trace["spans"]]


class TestNesting:
    def test_children_record_under_the_root(self, tracer):
        with tracer.trace("request") as root:
            with tracer.span("solve") as solve:
                with tracer.span("clique_sweep") as sweep:
                    sweep.set(cliques=3)
                assert solve.parent_id == root.span_id
        trace = tracer.recent()[0]
        assert set(span_names(trace)) == {"request", "solve", "clique_sweep"}
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["solve"]["parent_id"] == root.span_id
        assert by_name["clique_sweep"]["parent_id"] == by_name["solve"]["span_id"]
        assert by_name["clique_sweep"]["attributes"] == {"cliques": 3}

    def test_durations_are_measured(self, tracer):
        with tracer.trace("request"):
            with tracer.span("inner"):
                pass
        trace = tracer.recent()[0]
        assert trace["duration"] >= 0.0
        for s in trace["spans"]:
            assert s["duration"] is not None and s["duration"] >= 0.0

    def test_span_without_a_trace_is_a_noop(self, tracer):
        with tracer.span("orphan") as s:
            assert s is NULL_SPAN
            s.set(ignored=True).fold_stats(object())  # chainable, inert
        assert tracer.recent() == []

    def test_default_tracer_span_is_noop_outside_a_trace(self):
        with default_span("free-floating") as s:
            assert s is NULL_SPAN
        # Library instrumentation must not leak traces into the default
        # ring when nothing opened one.
        assert default_tracer().current() is None

    def test_caller_supplied_trace_id_is_kept(self, tracer):
        root = tracer.start_trace("request", trace_id="client-chosen")
        tracer.finish(root)
        assert tracer.find("client-chosen") is not None

    def test_current_trace_id_inside_and_outside(self, tracer):
        assert tracer.current_trace_id() is None
        with tracer.trace("request") as root:
            assert tracer.current_trace_id() == root.trace_id
        assert tracer.current_trace_id() is None


class TestRing:
    def test_ring_evicts_oldest(self):
        tracer = Tracer(ring_size=3)
        for index in range(5):
            with tracer.trace(f"t{index}"):
                pass
        names = [t["name"] for t in tracer.recent()]
        assert names == ["t4", "t3", "t2"]  # newest first

    def test_recent_limit(self, tracer):
        for index in range(4):
            with tracer.trace(f"t{index}"):
                pass
        assert len(tracer.recent(limit=2)) == 2

    def test_span_cap_drops_excess(self):
        tracer = Tracer(max_spans_per_trace=2)
        with tracer.trace("request"):
            for _ in range(5):
                with tracer.span("child"):
                    pass
        trace = tracer.recent()[0]
        # 2 children kept + the root appended by finish().
        assert len(trace["spans"]) == 3

    def test_export_json_roundtrips(self, tracer):
        import json

        with tracer.trace("request", op="status"):
            with tracer.span("solve"):
                pass
        payload = json.loads(tracer.export_json())
        assert payload["traces"][0]["attributes"] == {"op": "status"}
        assert payload["dropped_spans"] == 0


class TestAdoption:
    def worker_spans(self) -> list[dict]:
        """Spans produced the way a pool fork worker produces them."""
        worker = Tracer()
        root = worker.start_trace("solve_component", component=1)
        with worker.use(root):
            with worker.span("clique_sweep") as sweep:
                sweep.set(cliques=2)
        return worker.finish(root)["spans"]

    def test_adopt_reparents_roots_and_keeps_children(self, tracer):
        wire = self.worker_spans()
        with tracer.trace("request") as root:
            tracer.adopt(wire, root)
        trace = tracer.recent()[0]
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["solve_component"]["parent_id"] == root.span_id
        # The worker-internal child keeps its worker-side parent link.
        assert (
            by_name["clique_sweep"]["parent_id"]
            == by_name["solve_component"]["span_id"]
        )

    def test_adopt_without_active_span_is_a_noop(self, tracer):
        tracer.adopt(self.worker_spans())
        assert tracer.recent() == []


class TestCrossThread:
    def test_use_activates_a_root_in_another_thread(self, tracer):
        root = tracer.start_trace("request", op="status")

        def solver_thread() -> None:
            with tracer.use(root):
                with tracer.span("solve"):
                    pass

        thread = threading.Thread(target=solver_thread)
        thread.start()
        thread.join()
        trace = tracer.finish(root)
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["solve"]["parent_id"] == root.span_id

    def test_record_span_attaches_pre_timed_work(self, tracer):
        root = tracer.start_trace("request")
        tracer.record_span("queue_wait", root, duration=0.25)
        trace = tracer.finish(root)
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["queue_wait"]["duration"] == 0.25
        assert by_name["queue_wait"]["parent_id"] == root.span_id


class TestStatsFolding:
    def test_fold_stats_copies_non_default_fields(self, tracer):
        from repro.core.results import DCSatStats

        stats = DCSatStats(algorithm="opt", cliques_enumerated=7)
        with tracer.trace("request") as root:
            root.fold_stats(stats)
        attrs = tracer.recent()[0]["attributes"]
        assert attrs["algorithm"] == "opt"
        assert attrs["cliques_enumerated"] == 7
        assert "worlds_checked" not in attrs  # still at its default


class TestRenderTree:
    def test_renders_nested_spans_with_bars(self, tracer):
        with tracer.trace("request") as root:
            root.set(op="status")
            with tracer.span("solve"):
                with tracer.span("clique_sweep") as sweep:
                    sweep.set(cliques=4)
        out = render_tree(tracer.recent()[0])
        lines = out.splitlines()
        assert lines[0].startswith("trace ")
        assert any("request (op=status)" in line for line in lines)
        assert any("  solve" in line for line in lines)
        assert any("    clique_sweep (cliques=4)" in line for line in lines)
        assert all("|" in line for line in lines[1:])  # every row has a bar

    def test_renders_wire_spans_from_a_finished_trace(self, tracer):
        with tracer.trace("request"):
            with tracer.span("solve"):
                pass
        # render_tree consumes the ring's dict shape directly.
        out = render_tree(tracer.find(tracer.recent()[0]["trace_id"]))
        assert "solve" in out


class TestWire:
    def test_span_roundtrip(self):
        original = Span(
            name="solve",
            trace_id="t1",
            span_id="s1",
            parent_id="s0",
            started_at=123.0,
            start_mono=0.0,
            duration=0.5,
            attributes={"op": "status"},
        )
        clone = Span.from_wire(original.to_wire())
        assert clone.name == "solve"
        assert clone.span_id == "s1"
        assert clone.parent_id == "s0"
        assert clone.duration == 0.5
        assert clone.attributes == {"op": "status"}
