"""The observability endpoint over a real socket: routes, status codes,
content types, query parameters, and provider-failure containment."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from contextlib import contextmanager

import pytest

from repro.obs.http import ObservabilityEndpoint
from repro.obs.trace import Tracer


@contextmanager
def serving(endpoint: ObservabilityEndpoint):
    """Run the endpoint on its own event-loop thread; yield (host, port)."""
    started = threading.Event()
    state: dict = {}

    def target() -> None:
        async def main() -> None:
            await endpoint.start()
            state["loop"] = asyncio.get_running_loop()
            state["stop"] = asyncio.Event()
            started.set()
            await state["stop"].wait()
            await endpoint.stop()

        asyncio.run(main())

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert started.wait(timeout=10.0), "endpoint failed to start"
    try:
        yield endpoint.host, endpoint.port
    finally:
        state["loop"].call_soon_threadsafe(state["stop"].set)
        thread.join(timeout=10.0)


def get(host: str, port: int, target: str):
    """One GET over a fresh connection: (status, content_type, body)."""
    conn = http.client.HTTPConnection(host, port, timeout=10.0)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


@pytest.fixture
def tracer() -> Tracer:
    tracer = Tracer()
    with tracer.trace("request", op="status") as root:
        root.set(marker="first")
        with tracer.span("solve"):
            pass
    return tracer


class TestRoutes:
    def test_metrics(self, tracer):
        endpoint = ObservabilityEndpoint(
            metrics_text=lambda: 'repro_up{kind="test"} 1\n', tracer=tracer
        )
        with serving(endpoint) as (host, port):
            status, content_type, body = get(host, port, "/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert 'repro_up{kind="test"} 1' in body

    def test_healthz_ok_and_unavailable(self, tracer):
        health = {"code": 200}
        endpoint = ObservabilityEndpoint(
            health=lambda: (health["code"], {"status": "ok", "queue_depth": 2}),
            tracer=tracer,
        )
        with serving(endpoint) as (host, port):
            status, content_type, body = get(host, port, "/healthz")
            assert status == 200
            assert content_type == "application/json"
            assert json.loads(body) == {"status": "ok", "queue_depth": 2}
            health["code"] = 503
            status, _, _ = get(host, port, "/healthz")
            assert status == 503

    def test_tracez_lists_recent_traces(self, tracer):
        endpoint = ObservabilityEndpoint(tracer=tracer)
        with serving(endpoint) as (host, port):
            status, content_type, body = get(host, port, "/tracez")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["traces"][0]["name"] == "request"
        names = {s["name"] for s in payload["traces"][0]["spans"]}
        assert names == {"request", "solve"}

    def test_tracez_limit_and_trace_id(self, tracer):
        with tracer.trace("second"):
            pass
        endpoint = ObservabilityEndpoint(tracer=tracer)
        with serving(endpoint) as (host, port):
            limited = json.loads(get(host, port, "/tracez?limit=1")[2])
            assert len(limited["traces"]) == 1
            assert limited["traces"][0]["name"] == "second"  # newest first
            wanted = tracer.recent()[1]["trace_id"]
            found = json.loads(
                get(host, port, f"/tracez?trace_id={wanted}")[2]
            )
            assert len(found["traces"]) == 1
            assert found["traces"][0]["attributes"]["marker"] == "first"
            missing = json.loads(
                get(host, port, "/tracez?trace_id=nope")[2]
            )
            assert missing["traces"] == []


class TestErrors:
    def test_unknown_route_404(self, tracer):
        endpoint = ObservabilityEndpoint(tracer=tracer)
        with serving(endpoint) as (host, port):
            status, _, body = get(host, port, "/nope")
        assert status == 404
        assert "/nope" in body

    def test_missing_provider_404(self, tracer):
        endpoint = ObservabilityEndpoint(tracer=tracer)  # no metrics provider
        with serving(endpoint) as (host, port):
            assert get(host, port, "/metrics")[0] == 404

    def test_non_get_405(self, tracer):
        endpoint = ObservabilityEndpoint(tracer=tracer)
        with serving(endpoint) as (host, port):
            conn = http.client.HTTPConnection(host, port, timeout=10.0)
            try:
                conn.request("POST", "/metrics")
                assert conn.getresponse().status == 405
            finally:
                conn.close()

    def test_provider_exception_500_and_survives(self, tracer):
        def explode() -> str:
            raise RuntimeError("scrape boom")

        endpoint = ObservabilityEndpoint(metrics_text=explode, tracer=tracer)
        with serving(endpoint) as (host, port):
            assert get(host, port, "/metrics")[0] == 500
            # The endpoint must keep serving after a provider failure.
            assert get(host, port, "/tracez")[0] == 200
