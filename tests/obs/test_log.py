"""Structured logging: JSON schema, trace correlation, idempotent
handler installation, and level validation."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.log import configure_logging, get_logger
from repro.obs.trace import Tracer, default_tracer


@pytest.fixture(autouse=True)
def clean_handlers():
    """Each test installs its own capture stream; none may leak."""
    root = logging.getLogger("repro")
    saved = list(root.handlers)
    saved_level = root.level
    yield
    root.handlers = saved
    root.setLevel(saved_level)


def capture(level="debug", json_mode=True) -> io.StringIO:
    stream = io.StringIO()
    configure_logging(level=level, json_mode=json_mode, stream=stream)
    return stream


class TestJsonFormatter:
    def test_schema_fields(self):
        stream = capture()
        get_logger("test").warning("something %s", "happened")
        record = json.loads(stream.getvalue())
        assert record["level"] == "warning"
        assert record["logger"] == "repro.test"
        assert record["message"] == "something happened"
        assert isinstance(record["ts"], float)
        assert record["time"].endswith("Z")
        assert "trace_id" not in record  # no active span

    def test_ctx_extra_is_merged(self):
        stream = capture()
        get_logger("test").info(
            "queued", extra={"ctx": {"op": "status", "depth": 3}}
        )
        record = json.loads(stream.getvalue())
        assert record["op"] == "status"
        assert record["depth"] == 3

    def test_trace_correlation(self):
        stream = capture()
        with default_tracer().trace("request") as root:
            get_logger("test").info("inside")
        record = json.loads(stream.getvalue())
        assert record["trace_id"] == root.trace_id
        assert record["span_id"] == root.span_id

    def test_exception_is_captured(self):
        stream = capture()
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("test").error("failed", exc_info=True)
        record = json.loads(stream.getvalue())
        assert "ValueError: boom" in record["exc"]


class TestTextFormatter:
    def test_line_carries_trace_suffix(self):
        stream = capture(json_mode=False)
        tracer = Tracer()
        with tracer.trace("request"):
            # Text formatter reads the *default* tracer; a private
            # tracer's span must not bleed into the line.
            get_logger("test").info("plain")
        line = stream.getvalue()
        assert "repro.test: plain" in line
        assert "[trace=" not in line

    def test_ctx_rendered_as_key_value(self):
        stream = capture(json_mode=False)
        get_logger("test").info("drain", extra={"ctx": {"timeout": 10.0}})
        assert "timeout=10.0" in stream.getvalue()


class TestConfigure:
    def test_reconfigure_replaces_not_stacks(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(level="info", stream=first)
        configure_logging(level="info", stream=second)
        ours = [
            handler
            for handler in logging.getLogger("repro").handlers
            if getattr(handler, "_repro_obs_handler", False)
        ]
        assert len(ours) == 1
        get_logger("test").info("once")
        assert first.getvalue() == ""
        assert second.getvalue() != ""

    def test_level_filters(self):
        stream = capture(level="warning")
        get_logger("test").info("quiet")
        get_logger("test").warning("loud")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")

    def test_get_logger_namespacing(self):
        assert get_logger("service.pool").name == "repro.service.pool"
        assert get_logger("repro.core").name == "repro.core"
