"""Bench trend reports and the regression gate: row alignment, deltas,
noise floor, metadata drift, rendering, and CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.obs import bench


def artifact(rows, rev="base", **meta):
    payload = {
        "schema": 2,
        "rev": rev,
        "created": "2026-01-01T00:00:00Z",
        "python": "3.12.0",
        "platform": "linux-test",
        "cpu_count": 8,
        "benchmarks": rows,
    }
    payload.update(meta)
    return payload


def row(name, seconds, gate=False, **dims):
    entry = {"name": name, "seconds": seconds, **dims}
    if gate:
        entry["gate"] = True
    return entry


class TestRowIdentity:
    def test_key_uses_name_and_dimensions(self):
        a = row("engines.sweep", 1.0, engine="sync", backend="memory")
        b = row("engines.sweep", 2.0, engine="batched", backend="memory")
        assert bench.row_key(a) != bench.row_key(b)
        assert bench.row_key(a) == bench.row_key(dict(a, seconds=9.0))

    def test_describe_key_names_the_dims(self):
        key = bench.row_key(row("x", 1.0, engine="sync", planner="bitset"))
        assert bench.describe_key(key) == "x[engine=sync,planner=bitset]"
        assert bench.describe_key(bench.row_key(row("bare", 1.0))) == "bare"


class TestSampleQuantiles:
    def test_interpolated(self):
        q = bench.sample_quantiles([1.0, 2.0, 3.0, 4.0])
        assert q["p50"] == 2.5
        assert q["p95"] == pytest.approx(3.85)

    def test_empty_and_invalid(self):
        assert bench.sample_quantiles([]) == {}
        with pytest.raises(ValueError):
            bench.sample_quantiles([1.0], qs=(1.5,))


class TestDiff:
    def test_parity_is_ok(self):
        base = artifact([row("a", 1.0, gate=True), row("b", 0.5)])
        diff = bench.diff_artifacts(base, artifact([row("a", 1.0), row("b", 0.5)]))
        assert diff.ok
        assert all(r.status == "ok" for r in diff.rows)

    def test_gated_regression_fails_and_is_named(self):
        base = artifact([row("hot", 1.0, gate=True), row("cold", 1.0)])
        cur = artifact([row("hot", 1.3), row("cold", 1.3)], rev="cur")
        diff = bench.diff_artifacts(base, cur, gate_pct=25.0)
        assert not diff.ok
        assert [r.label for r in diff.failures] == ["hot"]
        hot = next(r for r in diff.rows if r.label == "hot")
        assert hot.status == "regression"
        assert hot.delta_pct == pytest.approx(30.0)
        # The un-gated row regressed identically but is informational.
        cold = next(r for r in diff.rows if r.label == "cold")
        assert cold.status == "regression" and not cold.gated

    def test_within_threshold_passes(self):
        base = artifact([row("hot", 1.0, gate=True)])
        diff = bench.diff_artifacts(
            base, artifact([row("hot", 1.2)]), gate_pct=25.0
        )
        assert diff.ok

    def test_improvement_is_not_a_failure(self):
        base = artifact([row("hot", 1.0, gate=True)])
        diff = bench.diff_artifacts(
            base, artifact([row("hot", 0.5)]), gate_pct=25.0
        )
        assert diff.ok
        assert diff.rows[0].status == "improved"

    def test_noise_floor_suppresses_tiny_rows(self):
        # 1ms -> 2ms is +100% but both sides sit under the 5ms floor.
        base = artifact([row("tiny", 0.001, gate=True)])
        diff = bench.diff_artifacts(base, artifact([row("tiny", 0.002)]))
        assert diff.ok
        assert diff.rows[0].noisy
        assert diff.rows[0].status == "ok"

    def test_missing_gated_row_fails(self):
        base = artifact([row("hot", 1.0, gate=True)])
        diff = bench.diff_artifacts(base, artifact([]))
        assert not diff.ok
        assert diff.rows[0].status == "missing"

    def test_new_and_untimed_rows_are_informational(self):
        base = artifact([{"name": "counted", "worlds": 12}])
        cur = artifact([{"name": "counted", "worlds": 99}, row("fresh", 1.0)])
        diff = bench.diff_artifacts(base, cur)
        statuses = {r.label: r.status for r in diff.rows}
        assert statuses == {"counted": "untimed", "fresh": "new"}
        assert diff.ok

    def test_metadata_drift_warns(self):
        base = artifact([row("a", 1.0)])
        cur = artifact([row("a", 1.0)], python="3.13.1", cpu_count=2)
        diff = bench.diff_artifacts(base, cur)
        assert any("python differs" in w for w in diff.warnings)
        assert any("cpu_count differs" in w for w in diff.warnings)
        assert diff.ok  # drift warns, it does not fail the gate

    def test_env_threshold_override(self, monkeypatch):
        monkeypatch.setenv(bench.GATE_PCT_ENV, "50")
        base = artifact([row("hot", 1.0, gate=True)])
        diff = bench.diff_artifacts(base, artifact([row("hot", 1.4)]))
        assert diff.gate_pct == 50.0
        assert diff.ok
        monkeypatch.setenv(bench.GATE_PCT_ENV, "not-a-number")
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            bench.diff_artifacts(base, artifact([row("hot", 1.4)]))


class TestRendering:
    def test_diff_markdown_has_rows_and_verdict(self):
        base = artifact([row("hot", 1.0, gate=True, engine="sync")])
        cur = artifact([row("hot", 2.0, engine="sync")], rev="cur")
        text = bench.render_diff(bench.diff_artifacts(base, cur))
        assert "FAIL" in text
        assert "hot[engine=sync]" in text
        assert "+100.0%" in text
        assert "Gated regressions:" in text

    def test_report_markdown_derives_quantiles(self):
        art = artifact(
            [dict(row("r", 0.2), samples=[0.1, 0.2, 0.3], gate=True)]
        )
        text = bench.render_report(art)
        assert "| r |" in text
        assert "200.00ms" in text  # p50 of the samples
        assert "✓" in text


class TestCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_diff_gate_exit_codes(self, tmp_path, capsys):
        base = self.write(
            tmp_path, "base.json", artifact([row("hot", 1.0, gate=True)])
        )
        same = self.write(tmp_path, "same.json", artifact([row("hot", 1.0)]))
        slow = self.write(tmp_path, "slow.json", artifact([row("hot", 2.0)]))
        assert bench.main(["diff", base, same, "--gate"]) == 0
        assert bench.main(["diff", base, slow, "--gate"]) == 1
        assert "bench gate FAILED: hot" in capsys.readouterr().err
        # Without --gate the regression is reported but not fatal.
        assert bench.main(["diff", base, slow]) == 0

    def test_diff_writes_markdown_out(self, tmp_path, capsys):
        base = self.write(tmp_path, "b.json", artifact([row("a", 1.0)]))
        out = tmp_path / "trend.md"
        assert bench.main(["diff", base, base, "--out", str(out)]) == 0
        assert "Bench diff" in out.read_text()
        capsys.readouterr()

    def test_report_json_mode(self, tmp_path, capsys):
        art = self.write(
            tmp_path, "r.json",
            artifact([dict(row("a", 0.2), samples=[0.1, 0.2, 0.3])]),
        )
        assert bench.main(["report", art, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmarks"][0]["p50"] == 0.2

    def test_malformed_artifact_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = self.write(tmp_path, "g.json", artifact([]))
        assert bench.main(["diff", str(bad), good]) == 2
        assert bench.main(["diff", str(tmp_path / "absent.json"), good]) == 2
        not_artifact = self.write(tmp_path, "n.json", {"rows": []})
        assert bench.main(["report", not_artifact]) == 2
        capsys.readouterr()

    def test_repro_cli_bench_subcommand(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        base = self.write(
            tmp_path, "base.json", artifact([row("hot", 1.0, gate=True)])
        )
        slow = self.write(tmp_path, "slow.json", artifact([row("hot", 1.5)]))
        assert repro_main(["bench", "diff", base, slow, "--gate"]) == 1
        assert repro_main(["bench", "report", base]) == 0
        capsys.readouterr()
