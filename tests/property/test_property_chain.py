"""Property tests: substrate invariants under random payment workloads."""

import random

from hypothesis import given, settings, strategies as st

from repro.bitcoin.chain import Blockchain, block_subsidy
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.mining import Miner
from repro.bitcoin.relmap import bitcoin_constraints, chain_to_database
from repro.bitcoin.transactions import COIN, OutPoint, TxOutput
from repro.bitcoin.wallet import Wallet
from repro.errors import ChainValidationError
from repro.relational.checking import check_database


def _run_workload(seed: int, blocks: int, payments_per_block: int) -> Blockchain:
    rng = random.Random(seed)
    wallets = [Wallet(KeyPair.generate(f"{seed}:{i}")) for i in range(4)]
    chain = Blockchain()
    chain.append_genesis(
        [TxOutput(10 * COIN, w.script) for w in wallets]
    )
    for height in range(blocks):
        pool = Mempool()
        for _ in range(payments_per_block):
            payer = rng.choice(wallets)
            payee = rng.choice([w for w in wallets if w is not payer])
            view = pool.extended_utxos(chain)
            exclude = pool.spent_outpoints()
            balance = sum(
                o.value for _, o in payer.spendable(view, exclude)
            )
            if balance < 1000:
                continue
            amount = rng.randint(1, balance // 2)
            try:
                tx = payer.create_payment(
                    view, payee.public_key, amount, rng.randint(1, 500),
                    exclude=exclude,
                )
                pool.add(tx, chain)
            except ChainValidationError:
                continue
        Miner(wallets[height % 4].public_key).mine(pool, chain)
    return chain


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_value_conservation(seed):
    """Total unspent value equals total minted value.  Fees circulate
    back through coinbases (coinbase = subsidy + fees), so the UTXO total
    must be exactly genesis value + the sum of block subsidies — assuming
    every miner claims the full reward, which ours does."""
    chain = _run_workload(seed, blocks=4, payments_per_block=3)
    minted = 40 * COIN  # genesis outputs
    minted += sum(block_subsidy(h) for h in range(1, len(chain.blocks)))
    assert chain.utxos.total_value() == minted


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_no_outpoint_spent_twice(seed):
    chain = _run_workload(seed, blocks=4, payments_per_block=3)
    spent: set[OutPoint] = set()
    for tx in chain.transactions():
        for outpoint in tx.outpoints():
            assert outpoint not in spent
            spent.add(outpoint)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_relational_image_always_consistent(seed):
    chain = _run_workload(seed, blocks=3, payments_per_block=3)
    current = chain_to_database(chain)
    assert check_database(current, bitcoin_constraints(current.schema))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_utxo_set_matches_replay(seed):
    """The incrementally maintained UTXO set equals a from-scratch replay."""
    from repro.bitcoin.chain import UTXOSet

    chain = _run_workload(seed, blocks=3, payments_per_block=3)
    replay = UTXOSet()
    for tx in chain.transactions():
        replay.apply(tx)
    assert set(replay) == set(chain.utxos)
