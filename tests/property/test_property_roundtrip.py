"""Property tests: parser and serializer round trips."""

from hypothesis import given, settings, strategies as st

from repro import serialize
from repro.query.parser import parse_query
from tests.property.test_property_dcsat import blockchain_dbs

_RELATIONS = ["R", "S3", "Tbl"]
_VAR_NAMES = ["x", "y", "zz", "v_1"]


@st.composite
def random_queries(draw):
    """Random safe conjunctive queries (textual form)."""
    atoms = []
    used_vars: list[str] = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        relation = draw(st.sampled_from(_RELATIONS))
        terms = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            if draw(st.booleans()):
                name = draw(st.sampled_from(_VAR_NAMES))
                used_vars.append(name)
                terms.append(name)
            elif draw(st.booleans()):
                terms.append(str(draw(st.integers(-5, 5))))
            else:
                value = draw(st.sampled_from(["abc", "Pk one", "it's"]))
                escaped = value.replace("\\", "\\\\").replace("'", "\\'")
                terms.append(f"'{escaped}'")
        atoms.append(f"{relation}({', '.join(terms)})")
    comparisons = []
    if len(set(used_vars)) >= 2 and draw(st.booleans()):
        pair = draw(st.permutations(sorted(set(used_vars))))[:2]
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        comparisons.append(f"{pair[0]} {op} {pair[1]}")
    return "q() <- " + ", ".join(atoms + comparisons)


@settings(max_examples=150, deadline=None)
@given(text=random_queries())
def test_parse_str_reparse_fixpoint(text):
    query = parse_query(text)
    rendered = str(query)
    again = parse_query(rendered)
    assert str(again) == rendered
    assert len(again.atoms) == len(query.atoms)
    assert len(again.comparisons) == len(query.comparisons)


@settings(max_examples=30, deadline=None)
@given(db=blockchain_dbs())
def test_serialize_round_trip_random_dbs(db):
    restored = serialize.loads(serialize.dumps(db))
    assert restored.current == db.current
    assert {tx.tx_id for tx in restored.pending} == {
        tx.tx_id for tx in db.pending
    }
    for tx in db.pending:
        assert restored.transaction(tx.tx_id).facts == tx.facts
    # Semantics preserved: identical possible worlds.
    from repro.core.possible_worlds import enumerate_possible_worlds

    assert set(enumerate_possible_worlds(restored)) == set(
        enumerate_possible_worlds(db)
    )


@settings(max_examples=30, deadline=None)
@given(db=blockchain_dbs())
def test_serialized_form_is_canonical(db):
    """Same database -> byte-identical JSON (sorted keys and rows)."""
    assert serialize.dumps(db) == serialize.dumps(
        serialize.loads(serialize.dumps(db))
    )
