"""Property tests: the sqlite backend agrees with the memory backend
on random worlds of random databases, for a pool of query shapes."""

from hypothesis import given, settings, strategies as st

from repro.core.workspace import Workspace
from repro.query.parser import parse_query
from repro.storage import MemoryBackend, SqliteBackend
from tests.property.test_property_dcsat import blockchain_dbs

QUERIES = [
    "q() <- B(x, y)",
    "q() <- A(x), B(x, y)",
    "q() <- B(x, y), B(x2, y2), x != x2",
    "q() <- B(x, y), not A(y)",
    "[q(count()) <- B(x, y)] > 1",
    "[q(sum(y)) <- B(x, y)] >= 3",
    "[q(cntd(x)) <- B(x, y)] = 2",
    "[q(min(y)) <- B(x, y)] < 2",
]


@settings(max_examples=50, deadline=None)
@given(
    db=blockchain_dbs(),
    query_index=st.integers(0, len(QUERIES) - 1),
    data=st.data(),
)
def test_backends_agree_on_random_worlds(db, query_index, data):
    query = parse_query(QUERIES[query_index])
    workspace = Workspace(db)
    ids = list(db.pending_ids)
    active = frozenset(data.draw(st.sets(st.sampled_from(ids)))) if ids else frozenset()

    memory = MemoryBackend()
    memory.attach(workspace)
    sqlite_backend = SqliteBackend()
    sqlite_backend.attach(workspace)
    try:
        assert sqlite_backend.evaluate(query, active) == memory.evaluate(
            query, active
        )
    finally:
        sqlite_backend.close()
