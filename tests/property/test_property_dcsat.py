"""Property tests: solver agreement on random blockchain databases.

Random small instances over a mixed {key, ind} schema; NaiveDCSat, the
assignment solver and brute force must agree on every monotone denial
constraint (OptDCSat is checked on single-atom queries, where its
component decomposition is provably sound).
"""

from hypothesis import given, settings, strategies as st

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction

VALUES = st.integers(min_value=0, max_value=3)


def _schema():
    return make_schema({"A": ["x"], "B": ["x", "y"]})


def _constraints(schema):
    return ConstraintSet(
        schema,
        [
            Key("B", ["x"], schema),
            InclusionDependency("B", ["x"], "A", ["x"]),
        ],
    )


@st.composite
def blockchain_dbs(draw):
    schema = _schema()
    constraints = _constraints(schema)
    # Current state: a functional set of B facts over declared A values.
    a_values = draw(st.sets(VALUES, max_size=3))
    b_state = {}
    for x in a_values:
        if draw(st.booleans()):
            b_state[x] = draw(VALUES)
    current = Database.from_dict(
        schema,
        {"A": [(x,) for x in a_values], "B": list(b_state.items())},
    )
    # Pending transactions: arbitrary small fact sets (may conflict, may
    # dangle — that is the model's whole point).
    tx_count = draw(st.integers(min_value=0, max_value=4))
    pending = []
    for index in range(tx_count):
        facts = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            if draw(st.booleans()):
                facts.append(("A", (draw(VALUES),)))
            else:
                facts.append(("B", (draw(VALUES), draw(VALUES))))
        pending.append(Transaction(facts, tx_id=f"P{index}"))
    return BlockchainDatabase(current, constraints, pending)


QUERIES = [
    "q() <- B(x, y)",
    "q() <- B(0, y)",
    "q() <- B(x, 1)",
    "q() <- A(x), B(x, y)",
    "q() <- B(x, y), B(x2, y2), x != x2",
    "q() <- B(x, y), x < y",
    "q() <- A(0), B(x, y), y >= 2",
]

AGG_QUERIES = [
    "[q(count()) <- B(x, y)] > 1",
    "[q(cntd(x)) <- B(x, y)] >= 2",
    "[q(max(y)) <- B(x, y)] > 2",
]


@settings(max_examples=60, deadline=None)
@given(db=blockchain_dbs(), query_index=st.integers(0, len(QUERIES) - 1))
def test_naive_assign_brute_agree(db, query_index):
    query = parse_query(QUERIES[query_index])
    checker = DCSatChecker(db)
    brute = checker.check(query, algorithm="brute", short_circuit=False)
    naive = checker.check(query, algorithm="naive", short_circuit=False)
    assign = checker.check(query, algorithm="assign", short_circuit=False)
    assert naive.satisfied == brute.satisfied
    assert assign.satisfied == brute.satisfied


@settings(max_examples=40, deadline=None)
@given(db=blockchain_dbs(), query_index=st.integers(0, len(AGG_QUERIES) - 1))
def test_aggregates_naive_matches_brute(db, query_index):
    query = parse_query(AGG_QUERIES[query_index])
    checker = DCSatChecker(db)
    brute = checker.check(query, algorithm="brute", short_circuit=False)
    naive = checker.check(query, algorithm="naive", short_circuit=False)
    assert naive.satisfied == brute.satisfied


@settings(max_examples=40, deadline=None)
@given(db=blockchain_dbs(), constant=VALUES)
def test_opt_sound_on_single_atom_queries(db, constant):
    # Single-atom queries cannot bridge through R: OptDCSat is exact.
    query = parse_query(f"q() <- B({constant}, y)")
    checker = DCSatChecker(db)
    brute = checker.check(query, algorithm="brute", short_circuit=False)
    opt = checker.check(query, algorithm="opt", short_circuit=False)
    assert opt.satisfied == brute.satisfied


@settings(max_examples=40, deadline=None)
@given(db=blockchain_dbs(), query_index=st.integers(0, len(QUERIES) - 1))
def test_short_circuit_never_changes_answers(db, query_index):
    query = parse_query(QUERIES[query_index])
    checker = DCSatChecker(db)
    with_sc = checker.check(query, algorithm="naive", short_circuit=True)
    without = checker.check(query, algorithm="naive", short_circuit=False)
    assert with_sc.satisfied == without.satisfied


@settings(max_examples=40, deadline=None)
@given(db=blockchain_dbs(), query_index=st.integers(0, len(QUERIES) - 1))
def test_witness_is_a_violating_possible_world(db, query_index):
    from repro.core.possible_worlds import is_possible_world, world_database
    from repro.query.evaluator import evaluate

    query = parse_query(QUERIES[query_index])
    checker = DCSatChecker(db)
    result = checker.check(query, algorithm="naive", short_circuit=False)
    if not result.satisfied:
        world = world_database(db, result.witness)
        assert is_possible_world(db, world)
        assert evaluate(query, world)
