"""Property tests: clique enumeration and components vs networkx."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    UndirectedGraph,
    bron_kerbosch,
    connected_components,
)


@st.composite
def graphs(draw):
    node_count = draw(st.integers(min_value=0, max_value=9))
    nodes = list(range(node_count))
    graph = UndirectedGraph(nodes=nodes)
    if node_count >= 2:
        possible = [
            (i, j) for i in nodes for j in nodes if i < j
        ]
        for edge in draw(st.lists(st.sampled_from(possible), max_size=20)):
            graph.add_edge(*edge)
    return graph


def _as_nx(graph: UndirectedGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.nodes)
    g.add_edges_from(graph.edges())
    return g


@settings(max_examples=100, deadline=None)
@given(graph=graphs(), pivot=st.booleans())
def test_bron_kerbosch_matches_networkx(graph, pivot):
    ours = set(bron_kerbosch(graph, pivot=pivot))
    reference = {frozenset(c) for c in nx.find_cliques(_as_nx(graph))}
    assert ours == reference


@settings(max_examples=100, deadline=None)
@given(graph=graphs())
def test_cliques_are_maximal_and_distinct(graph):
    cliques = list(bron_kerbosch(graph))
    assert len(cliques) == len(set(cliques))
    adjacency = graph.adjacency()
    for clique in cliques:
        for node in graph.nodes:
            if node not in clique:
                assert not clique <= adjacency[node] | {node}


@settings(max_examples=100, deadline=None)
@given(graph=graphs())
def test_components_match_networkx(graph):
    ours = {frozenset(c) for c in connected_components(graph)}
    reference = {frozenset(c) for c in nx.connected_components(_as_nx(graph))}
    assert ours == reference
