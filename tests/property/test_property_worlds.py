"""Property tests: possible-world structure and recognition."""

from hypothesis import given, settings, strategies as st

from repro.core.possible_worlds import (
    enumerate_possible_worlds,
    get_maximal,
    is_possible_world,
    world_database,
)
from repro.core.workspace import Workspace
from repro.relational.checking import check_database
from tests.property.test_property_dcsat import blockchain_dbs


@settings(max_examples=50, deadline=None)
@given(db=blockchain_dbs())
def test_every_world_satisfies_constraints(db):
    for world in enumerate_possible_worlds(db):
        materialized = world_database(db, world)
        assert check_database(materialized, db.constraints)


@settings(max_examples=50, deadline=None)
@given(db=blockchain_dbs())
def test_worlds_are_downward_reachable(db):
    """Every non-empty world has a predecessor: remove some transaction
    and still have a world (the can-append chain witnesses it)."""
    worlds = set(enumerate_possible_worlds(db))
    for world in worlds:
        if world:
            assert any(world - {tx} in worlds for tx in world)


@settings(max_examples=50, deadline=None)
@given(db=blockchain_dbs())
def test_recognition_matches_enumeration(db):
    worlds = set(enumerate_possible_worlds(db))
    for world in worlds:
        assert is_possible_world(db, world_database(db, world))


@settings(max_examples=30, deadline=None)
@given(db=blockchain_dbs(), data=st.data())
def test_non_worlds_are_rejected(db, data):
    worlds = set(enumerate_possible_worlds(db))
    ids = list(db.pending_ids)
    if not ids:
        return
    subset = frozenset(data.draw(st.sets(st.sampled_from(ids))))
    candidate = world_database(db, subset)
    recognized = is_possible_world(db, candidate)
    # Equality of *fact sets*, not of included-id sets: two different
    # subsets may materialize the same database.
    materializations = {
        frozenset(world_database(db, w).facts()) for w in worlds
    }
    expected = frozenset(candidate.facts()) in materializations
    assert recognized == expected


@settings(max_examples=50, deadline=None)
@given(db=blockchain_dbs(), data=st.data())
def test_get_maximal_is_maximal_and_order_independent_on_cliques(db, data):
    from repro.core.fd_graph import FdTransactionGraph
    from repro.relational.checking import can_extend

    ids = list(db.pending_ids)
    order = data.draw(st.permutations(ids))
    ws = Workspace(db)
    world = get_maximal(ws, order)
    # Maximality holds for ANY candidate order: at the fixpoint nothing
    # else from the chosen order can be appended.
    ws.set_active(world)
    for tx_id in order:
        if tx_id not in world:
            assert not can_extend(
                ws, db.constraints, ws.transaction_facts(tx_id)
            )
    # Order-independence is only promised on fd-consistent candidate
    # sets (cliques) — which is how the DCSat algorithms call it.  (An
    # earlier version of this test claimed it for arbitrary sets;
    # hypothesis found the two-conflicting-transactions counterexample.)
    graph = FdTransactionGraph(ws)
    if graph.is_clique([tx for tx in order if tx in graph.nodes]):
        clique = [tx for tx in order if tx in graph.nodes]
        forward = get_maximal(ws, clique)
        backward = get_maximal(ws, list(reversed(clique)))
        assert forward == backward


@settings(max_examples=50, deadline=None)
@given(db=blockchain_dbs())
def test_get_maximal_is_a_world(db):
    ws = Workspace(db)
    world = get_maximal(ws, db.pending_ids)
    assert is_possible_world(db, world_database(db, world))
