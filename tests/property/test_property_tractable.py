"""Property tests: the PTIME fragment solvers agree with brute force."""

from hypothesis import given, settings, strategies as st

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction

VALUES = st.integers(min_value=0, max_value=3)


@st.composite
def fd_only_dbs(draw):
    """Random {key}-only databases over B(x, y) and A(x)."""
    schema = make_schema({"A": ["x"], "B": ["x", "y"]})
    constraints = ConstraintSet(schema, [Key("B", ["x"], schema)])
    b_state = {}
    for x in draw(st.sets(VALUES, max_size=2)):
        b_state[x] = draw(VALUES)
    current = Database.from_dict(
        schema,
        {
            "A": [(x,) for x in draw(st.sets(VALUES, max_size=3))],
            "B": list(b_state.items()),
        },
    )
    pending = []
    for index in range(draw(st.integers(min_value=0, max_value=4))):
        facts = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            if draw(st.booleans()):
                facts.append(("A", (draw(VALUES),)))
            else:
                facts.append(("B", (draw(VALUES), draw(VALUES))))
        pending.append(Transaction(facts, tx_id=f"F{index}"))
    return BlockchainDatabase(current, constraints, pending)


@st.composite
def ind_only_dbs(draw):
    """Random {ind}-only databases: C(k, v) children of P(k)."""
    schema = make_schema({"P": ["k"], "C": ["k", "v"]})
    constraints = ConstraintSet(
        schema, [InclusionDependency("C", ["k"], "P", ["k"])]
    )
    parents = draw(st.sets(VALUES, max_size=2))
    children = [
        (k, draw(VALUES))
        for k in parents
        if draw(st.booleans())
    ]
    current = Database.from_dict(
        schema, {"P": [(k,) for k in parents], "C": children}
    )
    pending = []
    for index in range(draw(st.integers(min_value=0, max_value=4))):
        facts = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            if draw(st.booleans()):
                facts.append(("P", (draw(VALUES),)))
            else:
                facts.append(("C", (draw(VALUES), draw(VALUES))))
        pending.append(Transaction(facts, tx_id=f"I{index}"))
    return BlockchainDatabase(current, constraints, pending)


FD_QUERIES = [
    "q() <- B(x, y)",
    "q() <- B(0, y), A(x)",
    "q() <- B(x, y), not A(x)",
    "q() <- B(x, 1), not B(x, 2)",
    "q() <- B(x, y), B(x2, y2), x != x2",
]

FD_AGG_QUERIES = [
    "[q(max(y)) <- B(x, y)] > 1",
    "[q(count()) <- B(x, y)] < 2",
    "[q(cntd(x)) <- B(x, y)] < 3",
    "[q(sum(y)) <- B(x, y)] < 4",
    "[q(min(y)) <- B(x, y)] < 2",
]

IND_QUERIES = [
    "q() <- C(x, v)",
    "q() <- C(x, v), P(x)",
    "q() <- C(0, v), not P(1)",
    "q() <- P(x), not C(x, 0)",
    "q() <- C(x, v), C(x2, v2), x != x2",
]

IND_AGG_QUERIES = [
    "[q(count()) <- C(x, v)] > 1",
    "[q(cntd(x)) <- C(x, v)] > 1",
    "[q(max(v)) <- C(x, v)] > 2",
]


@settings(max_examples=60, deadline=None)
@given(db=fd_only_dbs(), index=st.integers(0, len(FD_QUERIES) - 1))
def test_fd_tractable_matches_brute(db, index):
    query = parse_query(FD_QUERIES[index])
    checker = DCSatChecker(db)
    tractable = checker.check(query, algorithm="tractable", short_circuit=False)
    brute = checker.check(query, algorithm="brute", short_circuit=False)
    assert tractable.satisfied == brute.satisfied


@settings(max_examples=60, deadline=None)
@given(db=fd_only_dbs(), index=st.integers(0, len(FD_AGG_QUERIES) - 1))
def test_fd_aggregate_tractable_matches_brute(db, index):
    query = parse_query(FD_AGG_QUERIES[index])
    checker = DCSatChecker(db)
    tractable = checker.check(query, algorithm="tractable", short_circuit=False)
    brute = checker.check(query, algorithm="brute", short_circuit=False)
    assert tractable.satisfied == brute.satisfied


@settings(max_examples=60, deadline=None)
@given(db=ind_only_dbs(), index=st.integers(0, len(IND_QUERIES) - 1))
def test_ind_tractable_matches_brute(db, index):
    query = parse_query(IND_QUERIES[index])
    checker = DCSatChecker(db)
    tractable = checker.check(query, algorithm="tractable", short_circuit=False)
    brute = checker.check(query, algorithm="brute", short_circuit=False)
    assert tractable.satisfied == brute.satisfied


@settings(max_examples=40, deadline=None)
@given(db=ind_only_dbs(), index=st.integers(0, len(IND_AGG_QUERIES) - 1))
def test_ind_aggregate_tractable_matches_brute(db, index):
    query = parse_query(IND_AGG_QUERIES[index])
    checker = DCSatChecker(db, assume_nonnegative_sums=True)
    tractable = checker.check(query, algorithm="tractable", short_circuit=False)
    brute = checker.check(query, algorithm="brute", short_circuit=False)
    assert tractable.satisfied == brute.satisfied


@settings(max_examples=40, deadline=None)
@given(db=fd_only_dbs(), index=st.integers(0, len(FD_QUERIES) - 1))
def test_auto_routes_to_tractable_on_fd_fragment(db, index):
    query = parse_query(FD_QUERIES[index])
    checker = DCSatChecker(db)
    result = checker.check(query, algorithm="auto", short_circuit=False)
    brute = checker.check(query, algorithm="brute", short_circuit=False)
    assert result.satisfied == brute.satisfied
