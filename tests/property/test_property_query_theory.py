"""Property tests: containment soundness and rewriter equivalence.

Both modules make semantic claims ("q1 ⊑ q2", "normalize preserves
meaning") that can be checked against the evaluator on random databases
— the strongest form of validation available offline.
"""

from hypothesis import given, settings, strategies as st

from repro.query.containment import is_contained_in
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.query.rewriter import Verdict, normalize
from repro.relational.database import Database, make_schema

VALUES = st.integers(min_value=0, max_value=2)


@st.composite
def random_databases(draw):
    schema = make_schema({"R": ["a", "b"], "S": ["x"]})
    r_rows = draw(
        st.sets(st.tuples(VALUES, VALUES), max_size=6)
    )
    s_rows = draw(st.sets(st.tuples(VALUES), max_size=3))
    return Database.from_dict(
        schema, {"R": list(r_rows), "S": list(s_rows)}
    )


# A pool of positive queries over the R/S schema, orderable by strength.
QUERY_POOL = [
    "q() <- R(x, y)",
    "q() <- R(x, x)",
    "q() <- R(0, y)",
    "q() <- R(x, 1)",
    "q() <- R(0, 1)",
    "q() <- R(x, y), S(x)",
    "q() <- R(x, y), S(y)",
    "q() <- R(x, y), R(y, z)",
    "q() <- R(x, y), R(y, x)",
    "q() <- S(x), R(x, x)",
]


@settings(max_examples=120, deadline=None)
@given(
    db=random_databases(),
    first=st.integers(0, len(QUERY_POOL) - 1),
    second=st.integers(0, len(QUERY_POOL) - 1),
)
def test_containment_is_sound(db, first, second):
    """If the homomorphism test says q1 ⊑ q2, then on every database
    q1's truth implies q2's truth."""
    q1 = parse_query(QUERY_POOL[first])
    q2 = parse_query(QUERY_POOL[second])
    if is_contained_in(q1, q2):
        if evaluate(q1, db):
            assert evaluate(q2, db), (QUERY_POOL[first], QUERY_POOL[second])


REWRITE_POOL = [
    "q() <- R(x, y), x = 0",
    "q() <- R(x, y), y = 1, 1 < 2",
    "q() <- R(x, y), R(x, y), x = x",
    "q() <- R(x, y), S(z), z = 0, x != y",
    "q() <- R(x, y), x <= x, 0 = 0",
    "q() <- R(x, y), x != x",
    "q() <- R(x, y), x = 0, x = 1",
    "[q(count()) <- R(x, y), x = 0] > 0",
    "[q(sum(y)) <- R(x, y), 1 <= 1] > 1",
]


@settings(max_examples=120, deadline=None)
@given(db=random_databases(), index=st.integers(0, len(REWRITE_POOL) - 1))
def test_normalize_preserves_evaluation(db, index):
    original = parse_query(REWRITE_POOL[index])
    rewritten, verdict = normalize(original)
    if verdict is Verdict.UNSATISFIABLE:
        assert not evaluate(original, db), REWRITE_POOL[index]
    else:
        assert evaluate(rewritten, db) == evaluate(original, db), (
            REWRITE_POOL[index]
        )
