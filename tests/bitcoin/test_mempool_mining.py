"""Mempool policies (conflicts, RBF) and the greedy miner."""

import pytest

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.mining import Miner
from repro.bitcoin.transactions import COIN, TxOutput
from repro.bitcoin.wallet import Wallet
from repro.errors import ChainValidationError

ALICE = Wallet(KeyPair.generate("alice"), name="alice")
BOB = Wallet(KeyPair.generate("bob"), name="bob")
CAROL = Wallet(KeyPair.generate("carol"), name="carol")


@pytest.fixture
def chain() -> Blockchain:
    chain = Blockchain(difficulty=0)
    chain.append_genesis(
        [
            TxOutput(20 * COIN, ALICE.script),
            TxOutput(20 * COIN, BOB.script),
            TxOutput(10 * COIN, ALICE.script),
        ]
    )
    return chain


class TestAdmission:
    def test_accepts_valid(self, chain):
        pool = Mempool()
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        fee = pool.add(tx, chain)
        assert fee == 100
        assert tx.txid in pool
        assert pool.feerate(tx.txid) == pytest.approx(100 / tx.size)

    def test_rejects_conflicts_by_default(self, chain):
        pool = Mempool()
        original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        pool.add(original, chain)
        conflict = ALICE.bump_fee(chain.utxos, original, 500)
        with pytest.raises(ChainValidationError):
            pool.add(conflict, chain)

    def test_rbf_replaces_when_better(self, chain):
        pool = Mempool(allow_replacement=True)
        original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        pool.add(original, chain)
        bumped = ALICE.bump_fee(chain.utxos, original, 5000)
        pool.add(bumped, chain)
        assert bumped.txid in pool
        assert original.txid not in pool

    def test_rbf_rejects_weak_replacement(self, chain):
        pool = Mempool(allow_replacement=True)
        original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 5000)
        bumped = ALICE.bump_fee(chain.utxos, original, 1000)
        pool.add(bumped, chain)
        # The original now pays a *lower* feerate than the resident: no
        # replacement.
        with pytest.raises(ChainValidationError):
            pool.add(original, chain)
        assert bumped.txid in pool

    def test_allow_conflicts_mode(self, chain):
        pool = Mempool(allow_conflicts=True)
        original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        conflict = ALICE.bump_fee(chain.utxos, original, 500)
        pool.add(original, chain)
        pool.add(conflict, chain)
        assert len(pool) == 2
        assert pool.conflicts_of(conflict) == {original.txid}

    def test_chained_unconfirmed_spend(self, chain):
        pool = Mempool()
        tx1 = ALICE.create_payment(chain.utxos, BOB.public_key, 5 * COIN, 100)
        pool.add(tx1, chain)
        view = pool.extended_utxos(chain)
        tx2 = BOB.create_payment(
            view, CAROL.public_key, COIN, 100, exclude=pool.spent_outpoints()
        )
        pool.add(tx2, chain)
        assert len(pool) == 2

    def test_duplicate_add_is_idempotent(self, chain):
        pool = Mempool()
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        assert pool.add(tx, chain) == pool.add(tx, chain)
        assert len(pool) == 1

    def test_onchain_tx_rejected(self, chain):
        pool = Mempool()
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        Miner(CAROL.public_key).mine(_pool_with(pool, tx, chain), chain)
        fresh = Mempool()
        with pytest.raises(ChainValidationError):
            fresh.add(tx, chain)


def _pool_with(pool, tx, chain):
    pool.add(tx, chain)
    return pool


class TestMiner:
    def test_feerate_priority(self, chain):
        pool = Mempool()
        cheap = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 10)
        pool.add(cheap, chain)
        rich = BOB.create_payment(chain.utxos, CAROL.public_key, COIN, 9000)
        pool.add(rich, chain)
        miner = Miner(CAROL.public_key, max_block_size=cheap.size)
        selected = miner.select_transactions(pool, chain)
        assert [tx.txid for tx in selected] == [rich.txid]

    def test_conflict_resolution_takes_one(self, chain):
        pool = Mempool(allow_conflicts=True)
        original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        conflict = ALICE.bump_fee(chain.utxos, original, 700)
        pool.add(original, chain)
        pool.add(conflict, chain)
        miner = Miner(CAROL.public_key)
        selected = miner.select_transactions(pool, chain)
        ids = {tx.txid for tx in selected}
        assert conflict.txid in ids  # higher feerate wins
        assert original.txid not in ids

    def test_dependency_ordering(self, chain):
        pool = Mempool()
        parent = ALICE.create_payment(chain.utxos, BOB.public_key, 5 * COIN, 10)
        pool.add(parent, chain)
        view = pool.extended_utxos(chain)
        # 22 COIN forces Bob to also spend the unconfirmed 5 COIN coin
        # from the parent (his confirmed balance is only 20).
        child = BOB.create_payment(
            view, CAROL.public_key, 22 * COIN, 9000,
            exclude=pool.spent_outpoints(),
        )
        assert parent.txid in {op.txid for op in child.outpoints()}
        pool.add(child, chain)
        miner = Miner(CAROL.public_key)
        selected = miner.select_transactions(pool, chain)
        positions = {tx.txid: i for i, tx in enumerate(selected)}
        assert positions[parent.txid] < positions[child.txid]

    def test_mine_appends_and_prunes(self, chain):
        pool = Mempool()
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        pool.add(tx, chain)
        block = Miner(CAROL.public_key).mine(pool, chain)
        assert chain.height == 1
        assert tx.txid in {t.txid for t in block.transactions}
        assert len(pool) == 0
        assert chain.contains_transaction(tx.txid)

    def test_mine_evicts_dead_conflicts(self, chain):
        pool = Mempool(allow_conflicts=True)
        original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        conflict = ALICE.bump_fee(chain.utxos, original, 700)
        pool.add(original, chain)
        pool.add(conflict, chain)
        Miner(CAROL.public_key).mine(pool, chain)
        # The winner confirmed; the loser is unmineable and evicted.
        assert len(pool) == 0

    def test_coinbase_collects_fees(self, chain):
        pool = Mempool()
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 12345)
        pool.add(tx, chain)
        block = Miner(CAROL.public_key).mine(pool, chain)
        from repro.bitcoin.chain import block_subsidy

        assert block.coinbase.total_output_value == block_subsidy(1) + 12345
