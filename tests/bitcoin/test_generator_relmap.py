"""The dataset generator and the chain → relational mapping."""

import pytest

from repro.bitcoin.generator import PRESETS, Dataset, DatasetSpec, generate_dataset
from repro.bitcoin.relmap import (
    bitcoin_constraints,
    bitcoin_schema,
    chain_to_database,
    to_blockchain_database,
)
from repro.errors import ReproError
from repro.relational.checking import check_database

TINY = DatasetSpec(
    name="tiny",
    committed_blocks=8,
    pending_blocks=3,
    txs_per_block=4,
    users=8,
    contradictions=3,
    seed=42,
)


@pytest.fixture(scope="module")
def dataset() -> Dataset:
    return generate_dataset(TINY)


class TestGenerator:
    def test_deterministic(self):
        a = generate_dataset(TINY)
        b = generate_dataset(TINY)
        assert [tx.txid for tx in a.pending] == [tx.txid for tx in b.pending]
        assert a.chain.tip_hash == b.chain.tip_hash

    def test_stats_shape(self, dataset):
        stats = dataset.stats()
        assert stats.blocks == TINY.committed_blocks + 1  # + genesis
        assert stats.transactions > TINY.committed_blocks  # coinbases alone
        assert stats.pending_transactions >= 3
        assert stats.contradictions == 3
        assert stats.outputs > stats.transactions  # change outputs exist

    def test_contradictions_are_real_conflicts(self, dataset):
        index = {tx.txid: tx for tx in dataset.pending}
        for original_id, conflict_id in dataset.contradiction_pairs:
            assert index[original_id].conflicts_with(index[conflict_id])

    def test_unknown_preset(self):
        with pytest.raises(ReproError):
            generate_dataset("D999")

    def test_presets_exist(self):
        assert set(PRESETS) == {"D100-S", "D200-S", "D300-S"}

    def test_fresh_recipients_not_on_chain(self, dataset):
        committed_owners = {
            output.script.owner
            for tx in dataset.chain.transactions()
            for output in tx.outputs
        }
        assert dataset.fresh_recipients
        for pk in dataset.fresh_recipients:
            assert pk not in committed_owners

    def test_late_wallets_never_spend_on_chain(self, dataset):
        late_keys = {w.public_key for w in dataset.late_wallets}
        assert late_keys
        for tx in dataset.chain.transactions():
            for tx_input in tx.inputs:
                consumed = dataset.chain.get_transaction(tx_input.outpoint.txid)
                owner = consumed.outputs[tx_input.outpoint.index].script.owner
                assert owner not in late_keys

    def test_scaled_override(self):
        spec = TINY.scaled(contradictions=1, name="tweaked")
        ds = generate_dataset(spec)
        assert len(ds.contradiction_pairs) == 1


class TestRelationalMapping:
    def test_schema_and_constraints(self):
        schema = bitcoin_schema()
        assert schema["TxOut"].attribute_names == ("txId", "ser", "pk", "amount")
        constraints = bitcoin_constraints(schema)
        assert len(constraints.fds) == 2
        assert len(constraints.inds) == 2

    def test_chain_state_satisfies_constraints(self, dataset):
        schema = bitcoin_schema()
        current = chain_to_database(dataset.chain, schema)
        assert check_database(current, bitcoin_constraints(schema))

    def test_row_counts_match_chain(self, dataset):
        current = chain_to_database(dataset.chain)
        stats = dataset.stats()
        assert len(current["TxOut"]) == stats.outputs
        assert len(current["TxIn"]) == stats.inputs

    def test_blockchain_database_construction(self, dataset):
        db = dataset.to_blockchain_database()
        assert len(db.pending) == len(dataset.pending)
        # Pending transactions contribute both TxOut and TxIn rows.
        some_tx = db.pending[0]
        assert some_tx.tuples("TxOut")
        assert some_tx.tuples("TxIn")

    def test_contradictions_surface_as_fd_conflicts(self, dataset):
        from repro.core.checker import DCSatChecker

        checker = DCSatChecker(dataset.to_blockchain_database())
        assert checker.fd_graph.conflict_count() >= len(
            dataset.contradiction_pairs
        )
        for original_id, conflict_id in dataset.contradiction_pairs:
            assert not checker.fd_graph.has_edge(original_id, conflict_id)

    def test_ser_is_one_based(self, dataset):
        current = chain_to_database(dataset.chain)
        sers = {row[1] for row in current["TxOut"]}
        assert 0 not in sers
        assert 1 in sers

    def test_coinbases_have_no_txin_rows(self, dataset):
        current = chain_to_database(dataset.chain)
        coinbase = dataset.chain.blocks[1].coinbase
        assert not current["TxIn"].lookup((4,), (coinbase.txid,))
        assert current["TxOut"].lookup((0,), (coinbase.txid,))
