"""The validating chain: UTXO tracking, block/transaction rules."""

import pytest

from repro.bitcoin.blocks import Block
from repro.bitcoin.chain import Blockchain, UTXOSet, block_subsidy
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mining import Miner
from repro.bitcoin.script import P2PKScript, Witness
from repro.bitcoin.transactions import (
    COIN,
    BitcoinTransaction,
    OutPoint,
    TxInput,
    TxOutput,
)
from repro.bitcoin.wallet import Wallet
from repro.errors import ChainValidationError

ALICE = Wallet(KeyPair.generate("alice"), name="alice")
BOB = Wallet(KeyPair.generate("bob"), name="bob")


@pytest.fixture
def chain() -> Blockchain:
    chain = Blockchain(difficulty=0)
    chain.append_genesis([TxOutput(50 * COIN, ALICE.script)])
    return chain


def _payment(chain, wallet, recipient, amount, fee=100):
    return wallet.create_payment(chain.utxos, recipient.public_key, amount, fee)


class TestGenesis:
    def test_genesis_creates_utxos(self, chain):
        assert len(chain.blocks) == 1
        assert chain.utxos.total_value() == 50 * COIN
        assert ALICE.balance(chain.utxos) == 50 * COIN

    def test_double_genesis_rejected(self, chain):
        with pytest.raises(ChainValidationError):
            chain.append_genesis([TxOutput(1, ALICE.script)])


class TestTransactionValidation:
    def test_valid_payment(self, chain):
        tx = _payment(chain, ALICE, BOB, 10 * COIN)
        fee = chain.validate_transaction(tx)
        assert fee == 100

    def test_missing_outpoint(self, chain):
        tx = BitcoinTransaction(
            [TxInput(OutPoint("0" * 64, 5))], [TxOutput(1, BOB.script)]
        )
        with pytest.raises(ChainValidationError):
            chain.validate_transaction(tx)

    def test_bad_witness(self, chain):
        genesis_txid = chain.blocks[0].coinbase.txid
        unsigned = BitcoinTransaction(
            [TxInput(OutPoint(genesis_txid, 0))], [TxOutput(1, BOB.script)]
        )
        with pytest.raises(ChainValidationError):
            chain.validate_transaction(unsigned)

    def test_wrong_signer(self, chain):
        genesis_txid = chain.blocks[0].coinbase.txid
        unsigned = BitcoinTransaction(
            [TxInput(OutPoint(genesis_txid, 0))], [TxOutput(1, BOB.script)]
        )
        bad = unsigned.with_witnesses(
            [Witness((BOB.public_key,), (BOB.keypair.sign(unsigned.signing_digest()),))]
        )
        with pytest.raises(ChainValidationError):
            chain.validate_transaction(bad)

    def test_overspend_rejected(self, chain):
        genesis_txid = chain.blocks[0].coinbase.txid
        unsigned = BitcoinTransaction(
            [TxInput(OutPoint(genesis_txid, 0))],
            [TxOutput(60 * COIN, BOB.script)],
        )
        digest = unsigned.signing_digest()
        signed = unsigned.with_witnesses(
            [Witness((ALICE.public_key,), (ALICE.keypair.sign(digest),))]
        )
        with pytest.raises(ChainValidationError):
            chain.validate_transaction(signed)

    def test_coinbase_rejected_as_loose_tx(self, chain):
        coinbase = BitcoinTransaction([], [TxOutput(1, BOB.script)])
        with pytest.raises(ChainValidationError):
            chain.validate_transaction(coinbase)


class TestBlockValidation:
    def _mine(self, chain, txs):
        miner = Miner(BOB.public_key)
        block = miner.build_block(chain, txs)
        chain.append_block(block)
        return block

    def test_payment_updates_utxos(self, chain):
        tx = _payment(chain, ALICE, BOB, 10 * COIN)
        self._mine(chain, [tx])
        assert BOB.balance(chain.utxos) >= 10 * COIN
        assert ALICE.balance(chain.utxos) == 50 * COIN - 10 * COIN - 100

    def test_double_spend_across_blocks_rejected(self, chain):
        tx1 = _payment(chain, ALICE, BOB, 10 * COIN)
        tx2 = _payment(chain, ALICE, BOB, 20 * COIN)  # same coin
        self._mine(chain, [tx1])
        miner = Miner(BOB.public_key)
        with pytest.raises(ChainValidationError):
            miner.build_block(chain, [tx2])

    def test_intra_block_chain_allowed(self, chain):
        # Bob spends Alice's payment within the same block.
        tx1 = _payment(chain, ALICE, BOB, 10 * COIN)
        utxo_view = chain.utxos.copy()
        utxo_view.apply(tx1)
        tx2 = BOB.create_payment(utxo_view, ALICE.public_key, COIN, 50)
        block = self._mine(chain, [tx1, tx2])
        assert len(block.transactions) == 3

    def test_wrong_height_rejected(self, chain):
        coinbase = BitcoinTransaction([], [TxOutput(1, BOB.script)], tag="cb")
        block = Block(5, chain.tip_hash, (coinbase,))
        with pytest.raises(ChainValidationError):
            chain.append_block(block)

    def test_wrong_prev_hash_rejected(self, chain):
        coinbase = BitcoinTransaction([], [TxOutput(1, BOB.script)], tag="cb")
        block = Block(1, "9" * 64, (coinbase,))
        with pytest.raises(ChainValidationError):
            chain.append_block(block)

    def test_greedy_coinbase_rejected(self, chain):
        too_much = BitcoinTransaction(
            [], [TxOutput(block_subsidy(1) + 1, BOB.script)], tag="cb"
        )
        block = Block(1, chain.tip_hash, (too_much,))
        with pytest.raises(ChainValidationError):
            chain.append_block(block)

    def test_first_tx_must_be_coinbase(self, chain):
        tx = _payment(chain, ALICE, BOB, COIN)
        block = Block(1, chain.tip_hash, (tx,))
        with pytest.raises(ChainValidationError):
            chain.append_block(block)

    def test_pow_enforced(self):
        hard = Blockchain(difficulty=2)
        genesis = hard.append_genesis([TxOutput(COIN, ALICE.script)])
        assert genesis.header_hash().startswith("00")


class TestSubsidy:
    def test_halving_schedule(self):
        assert block_subsidy(0) == 50 * COIN
        assert block_subsidy(9_999) == 50 * COIN
        assert block_subsidy(10_000) == 25 * COIN
        assert block_subsidy(20_000) == 12_5 * COIN // 10
        assert block_subsidy(10_000 * 64) == 0


class TestUTXOSet:
    def test_by_owner(self, chain):
        coins = chain.utxos.by_owner(ALICE.public_key)
        assert len(coins) == 1
        assert coins[0][1].value == 50 * COIN

    def test_copy_isolated(self, chain):
        snapshot = chain.utxos.copy()
        tx = _payment(chain, ALICE, BOB, COIN)
        snapshot.apply(tx)
        assert len(chain.utxos) == 1
        assert len(snapshot) == 2  # payment + change

    def test_require(self, chain):
        with pytest.raises(ChainValidationError):
            chain.utxos.require(OutPoint("0" * 64, 9))

    def test_apply_missing_input(self, chain):
        utxos = UTXOSet()
        tx = BitcoinTransaction(
            [TxInput(OutPoint("a" * 64, 0))], [TxOutput(1, BOB.script)]
        )
        with pytest.raises(ChainValidationError):
            utxos.apply(tx)
