"""The chain explorer: balances, history, uncertainty bands."""

import pytest

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.explorer import ChainExplorer
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.mining import Miner
from repro.bitcoin.transactions import COIN, TxOutput
from repro.bitcoin.wallet import Wallet

ALICE = Wallet(KeyPair.generate("alice"), name="alice")
BOB = Wallet(KeyPair.generate("bob"), name="bob")
MINER = Miner(KeyPair.generate("miner").public_key)


@pytest.fixture
def setup():
    chain = Blockchain()
    chain.append_genesis(
        [TxOutput(20 * COIN, ALICE.script), TxOutput(10 * COIN, BOB.script)]
    )
    pool = Mempool(allow_conflicts=True)
    return chain, pool


class TestHistory:
    def test_confirmed_events(self, setup):
        chain, pool = setup
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, 3 * COIN, 100)
        pool.add(tx, chain)
        MINER.mine(pool, chain)
        explorer = ChainExplorer(chain)
        bob_events = explorer.history(BOB.public_key)
        assert [e.delta for e in bob_events] == [10 * COIN, 3 * COIN]
        alice_events = explorer.history(ALICE.public_key)
        assert alice_events[-1].delta == -(3 * COIN) - 100
        assert all(e.confirmed for e in alice_events)

    def test_pending_events(self, setup):
        chain, pool = setup
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, 3 * COIN, 100)
        pool.add(tx, chain)
        explorer = ChainExplorer(chain, pool)
        pending = [e for e in explorer.history(BOB.public_key) if not e.confirmed]
        assert len(pending) == 1
        assert pending[0].delta == 3 * COIN
        assert pending[0].height is None


class TestBalance:
    def test_no_mempool(self, setup):
        chain, _ = setup
        explorer = ChainExplorer(chain)
        report = explorer.balance(ALICE.public_key)
        assert report.confirmed == 20 * COIN
        assert report.pessimistic == report.optimistic == 20 * COIN

    def test_uncertainty_band_with_conflicts(self, setup):
        chain, pool = setup
        original = ALICE.create_payment(chain.utxos, BOB.public_key, 3 * COIN, 100)
        conflict = ALICE.bump_fee(chain.utxos, original, 700)
        pool.add(original, chain)
        pool.add(conflict, chain)
        explorer = ChainExplorer(chain, pool)
        report = explorer.balance(BOB.public_key)
        assert report.exact
        # Bob keeps 10 in the worst case; gains exactly one 3-coin
        # payment in the best (the two versions conflict).
        assert report.pessimistic == 10 * COIN
        assert report.optimistic == 13 * COIN

    def test_parent_closure_respected(self, setup):
        chain, pool = setup
        parent = ALICE.create_payment(chain.utxos, BOB.public_key, 5 * COIN, 100)
        pool.add(parent, chain)
        view = pool.extended_utxos(chain)
        # Bob forwards the unconfirmed 5 coins onward (needs the parent).
        child = BOB.create_payment(
            view, ALICE.public_key, 12 * COIN, 100,
            exclude=pool.spent_outpoints(),
        )
        pool.add(child, chain)
        explorer = ChainExplorer(chain, pool)
        report = explorer.balance(BOB.public_key)
        assert report.exact
        # Best case for Bob: only the parent confirms -> +5.
        assert report.optimistic == 15 * COIN
        # Worst case: both confirm -> 10 + 5 - 12 - fee accounted change.
        assert report.pessimistic < 10 * COIN

    def test_inexact_fallback(self, setup):
        chain, pool = setup
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        pool.add(tx, chain)
        explorer = ChainExplorer(chain, pool)
        report = explorer.balance(BOB.public_key, exact_limit=0)
        assert not report.exact
        assert report.optimistic == 11 * COIN
        assert report.pessimistic == 10 * COIN


class TestSummaries:
    def test_richest(self, setup):
        chain, _ = setup
        explorer = ChainExplorer(chain)
        ranked = explorer.richest(top=2)
        assert ranked[0] == (ALICE.public_key, 20 * COIN)
        assert ranked[1] == (BOB.public_key, 10 * COIN)

    def test_fee_summary(self, setup):
        chain, pool = setup
        tx1 = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        pool.add(tx1, chain)
        MINER.mine(pool, chain)
        tx2 = BOB.create_payment(chain.utxos, ALICE.public_key, COIN, 300)
        pool2 = Mempool()
        pool2.add(tx2, chain)
        MINER.mine(pool2, chain)
        summary = ChainExplorer(chain).fee_summary()
        assert summary["count"] == 2
        assert summary["total"] == 400
        assert summary["mean"] == 200.0

    def test_fee_summary_empty(self, setup):
        chain, _ = setup
        assert ChainExplorer(chain).fee_summary()["count"] == 0

    def test_lookups(self, setup):
        chain, pool = setup
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        pool.add(tx, chain)
        explorer = ChainExplorer(chain, pool)
        assert explorer.is_pending(tx.txid)
        assert explorer.transaction_height(tx.txid) is None
        genesis_cb = chain.blocks[0].coinbase
        assert explorer.transaction_height(genesis_cb.txid) == 0
        from repro.bitcoin.transactions import OutPoint

        assert (
            explorer.output_owner(OutPoint(genesis_cb.txid, 0))
            == ALICE.public_key
        )
        assert explorer.output_owner(OutPoint("f" * 64, 0)) is None
