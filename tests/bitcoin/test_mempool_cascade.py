"""Mempool eviction cascades and multi-coin selection."""

import pytest

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.mining import Miner
from repro.bitcoin.transactions import COIN, TxOutput
from repro.bitcoin.wallet import Wallet

ALICE = Wallet(KeyPair.generate("alice"), name="alice")
BOB = Wallet(KeyPair.generate("bob"), name="bob")
CAROL = Wallet(KeyPair.generate("carol"), name="carol")
MINER = Miner(KeyPair.generate("miner").public_key)


@pytest.fixture
def chain():
    chain = Blockchain()
    chain.append_genesis(
        [
            TxOutput(10 * COIN, ALICE.script),
            TxOutput(4 * COIN, ALICE.script),
            TxOutput(2 * COIN, ALICE.script),
        ]
    )
    return chain


class TestEvictionCascade:
    def test_parent_eviction_kills_children(self, chain):
        """Confirming a conflict of the parent must evict the parent AND
        its chained descendants (evict_invalid's fixpoint loop)."""
        pool = Mempool(allow_conflicts=True)
        parent = ALICE.create_payment(chain.utxos, BOB.public_key, 8 * COIN, 100)
        pool.add(parent, chain)
        view = pool.extended_utxos(chain)
        child = BOB.create_payment(
            view, CAROL.public_key, 5 * COIN, 100,
            exclude=pool.spent_outpoints(),
        )
        pool.add(child, chain)
        view = pool.extended_utxos(chain)
        grandchild = CAROL.create_payment(
            view, ALICE.public_key, 2 * COIN, 100,
            exclude=pool.spent_outpoints(),
        )
        pool.add(grandchild, chain)
        assert len(pool) == 3

        # A conflicting spend of the parent's input confirms instead.
        rival = ALICE.bump_fee(chain.utxos, parent, 50_000)
        block = MINER.build_block(chain, [rival])
        chain.append_block(block)
        pool.remove_confirmed({tx.txid for tx in block.transactions})
        evicted = pool.evict_invalid(chain)
        assert set(evicted) == {parent.txid, child.txid, grandchild.txid}
        assert len(pool) == 0

    def test_unrelated_residents_survive(self, chain):
        pool = Mempool(allow_conflicts=True)
        doomed = ALICE.create_payment(chain.utxos, BOB.public_key, 8 * COIN, 100)
        survivor = ALICE.create_payment(
            chain.utxos, CAROL.public_key, COIN, 100,
            exclude=set(doomed.outpoints()),
        )
        pool.add(doomed, chain)
        pool.add(survivor, chain)
        rival = ALICE.bump_fee(chain.utxos, doomed, 50_000)
        block = MINER.build_block(chain, [rival])
        chain.append_block(block)
        pool.remove_confirmed({tx.txid for tx in block.transactions})
        evicted = pool.evict_invalid(chain)
        assert evicted == [doomed.txid]
        assert survivor.txid in pool


class TestCoinSelection:
    def test_multi_coin_payment(self, chain):
        # 13 coins needs at least two of Alice's three coins.
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, 13 * COIN, 100)
        assert len(tx.inputs) == 2
        assert chain.validate_transaction(tx) == 100

    def test_all_coins_payment(self, chain):
        tx = ALICE.create_payment(
            chain.utxos, BOB.public_key, 16 * COIN - 100, 100
        )
        assert len(tx.inputs) == 3
        assert len(tx.outputs) == 1  # nothing left for change

    def test_largest_first_selection(self, chain):
        # A small payment should use one (the largest) coin, not many.
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        assert len(tx.inputs) == 1
        consumed = chain.utxos.require(tx.inputs[0].outpoint)
        assert consumed.value == 10 * COIN
