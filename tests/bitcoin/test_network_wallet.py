"""Node network (gossip, divergent mempools) and wallets (reissues)."""

import pytest

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mining import Miner
from repro.bitcoin.network import Network, Node
from repro.bitcoin.transactions import COIN, TxOutput
from repro.bitcoin.wallet import Wallet
from repro.errors import ChainValidationError, ReproError

ALICE = Wallet(KeyPair.generate("alice"), name="alice")
BOB = Wallet(KeyPair.generate("bob"), name="bob")
MINER_KEY = KeyPair.generate("miner")


def _network(num_nodes=3) -> Network:
    network = Network()
    for index in range(num_nodes):
        node = Node(
            f"n{index}",
            miner=Miner(MINER_KEY.public_key) if index == 0 else None,
        )
        network.add_node(node)
    genesis_outputs = [
        TxOutput(20 * COIN, ALICE.script),
        TxOutput(20 * COIN, BOB.script),
    ]
    first = next(iter(network.nodes.values()))
    genesis = first.chain.append_genesis(genesis_outputs)
    for node_id, node in network.nodes.items():
        if node is not first:
            node.chain.append_block(genesis)
    return network


class TestNetwork:
    def test_broadcast_reaches_all(self):
        network = _network()
        node = network.nodes["n0"]
        tx = ALICE.create_payment(node.chain.utxos, BOB.public_key, COIN, 100)
        outcome = network.broadcast_transaction(tx)
        assert all(outcome.values())
        assert all(tx.txid in n.mempool for n in network.nodes.values())

    def test_divergent_mempools_on_conflict(self):
        """The model's core premise: different nodes can hold different
        members of a conflicting pair — the pending union is uncertain."""
        network = _network()
        node = network.nodes["n0"]
        original = ALICE.create_payment(node.chain.utxos, BOB.public_key, COIN, 100)
        conflict = ALICE.bump_fee(node.chain.utxos, original, 700)
        network.broadcast_transaction(original)
        outcome = network.broadcast_transaction(conflict)
        assert not any(outcome.values())  # everyone already has the original
        # Fresh node that never saw the original accepts the conflict.
        late = Node("late")
        network.add_node(late)
        assert late.offer_transaction(conflict)
        union = network.pending_union()
        assert {original.txid, conflict.txid} <= set(union)

    def test_mining_propagates_block(self):
        network = _network()
        node = network.nodes["n0"]
        tx = ALICE.create_payment(node.chain.utxos, BOB.public_key, COIN, 100)
        network.broadcast_transaction(tx)
        block = network.mine_block("n0")
        for n in network.nodes.values():
            assert n.chain.height == 1
            assert tx.txid not in n.mempool
        assert tx.txid in {t.txid for t in block.transactions}

    def test_mining_without_miner(self):
        network = _network()
        with pytest.raises(ReproError):
            network.mine_block("n1")

    def test_duplicate_node_id(self):
        network = _network()
        with pytest.raises(ReproError):
            network.add_node(Node("n0"))

    def test_new_node_syncs_chain(self):
        network = _network()
        network.mine_block("n0")
        newcomer = Node("newbie")
        network.add_node(newcomer)
        assert newcomer.chain.height == 1


class TestWallet:
    @pytest.fixture
    def chain(self) -> Blockchain:
        chain = Blockchain()
        chain.append_genesis(
            [TxOutput(10 * COIN, ALICE.script), TxOutput(4 * COIN, ALICE.script)]
        )
        return chain

    def test_balance_and_spendable(self, chain):
        assert ALICE.balance(chain.utxos) == 14 * COIN
        assert len(ALICE.spendable(chain.utxos)) == 2
        assert BOB.balance(chain.utxos) == 0

    def test_payment_with_change(self, chain):
        tx = ALICE.create_payment(chain.utxos, BOB.public_key, 3 * COIN, 100)
        assert chain.validate_transaction(tx) == 100
        owners = [o.script.owner for o in tx.outputs]
        assert BOB.public_key in owners
        assert ALICE.public_key in owners  # change comes back

    def test_exact_spend_no_change(self, chain):
        tx = ALICE.create_payment(
            chain.utxos, BOB.public_key, 10 * COIN - 100, 100
        )
        assert len(tx.outputs) == 1

    def test_insufficient_funds(self, chain):
        with pytest.raises(ChainValidationError):
            ALICE.create_payment(chain.utxos, BOB.public_key, 100 * COIN, 100)

    def test_invalid_amounts(self, chain):
        with pytest.raises(ReproError):
            ALICE.create_payment(chain.utxos, BOB.public_key, 0, 100)
        with pytest.raises(ReproError):
            ALICE.create_payment(chain.utxos, BOB.public_key, 1, -5)

    def test_bump_fee_conflicts_and_pays_more(self, chain):
        original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        bumped = ALICE.bump_fee(chain.utxos, original, 900)
        assert bumped.conflicts_with(original)
        assert chain.validate_transaction(bumped) == 1000
        # Recipient output untouched.
        assert bumped.outputs[0] == original.outputs[0]

    def test_bump_fee_needs_change(self, chain):
        no_change = ALICE.create_payment(
            chain.utxos, BOB.public_key, 10 * COIN - 100, 100
        )
        with pytest.raises(ChainValidationError):
            ALICE.bump_fee(chain.utxos, no_change, 500)

    def test_bump_fee_positive(self, chain):
        original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        with pytest.raises(ReproError):
            ALICE.bump_fee(chain.utxos, original, 0)

    def test_reissue_unsafe_avoids_original_inputs(self, chain):
        original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
        reissue = ALICE.reissue_unsafe(
            chain.utxos, original, BOB.public_key, COIN, 100
        )
        assert not reissue.conflicts_with(original)
