"""Transactions (ids, digests, conflicts) and blocks (merkle, PoW)."""

import pytest

from repro.bitcoin.blocks import (
    GENESIS_PREV_HASH,
    Block,
    meets_difficulty,
    merkle_root,
)
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.script import P2PKScript, Witness
from repro.bitcoin.transactions import (
    BitcoinTransaction,
    OutPoint,
    TxInput,
    TxOutput,
)
from repro.errors import ChainValidationError

KP = KeyPair.generate("kp")


def _simple_tx(value=100, tag=""):
    return BitcoinTransaction(
        [TxInput(OutPoint("f" * 64, 0))],
        [TxOutput(value, P2PKScript(KP.public_key))],
        tag=tag,
    )


class TestTransactions:
    def test_txid_deterministic(self):
        assert _simple_tx().txid == _simple_tx().txid
        assert _simple_tx(100).txid != _simple_tx(101).txid

    def test_tag_changes_txid(self):
        assert _simple_tx(tag="a").txid != _simple_tx(tag="b").txid

    def test_coinbase(self):
        coinbase = BitcoinTransaction([], [TxOutput(50, P2PKScript("pk"))])
        assert coinbase.is_coinbase
        assert not _simple_tx().is_coinbase

    def test_needs_outputs(self):
        with pytest.raises(ChainValidationError):
            BitcoinTransaction([TxInput(OutPoint("a" * 64, 0))], [])

    def test_duplicate_outpoint_rejected(self):
        outpoint = OutPoint("a" * 64, 0)
        with pytest.raises(ChainValidationError):
            BitcoinTransaction(
                [TxInput(outpoint), TxInput(outpoint)],
                [TxOutput(1, P2PKScript("pk"))],
            )

    def test_output_value_validation(self):
        with pytest.raises(ChainValidationError):
            TxOutput(-1, P2PKScript("pk"))
        with pytest.raises(ChainValidationError):
            TxOutput(1.5, P2PKScript("pk"))
        with pytest.raises(ChainValidationError):
            TxOutput(True, P2PKScript("pk"))

    def test_conflicts_with(self):
        a = _simple_tx(100)
        b = _simple_tx(200)
        assert a.conflicts_with(b)  # same outpoint
        c = BitcoinTransaction(
            [TxInput(OutPoint("e" * 64, 0))], [TxOutput(1, P2PKScript("pk"))]
        )
        assert not a.conflicts_with(c)

    def test_malleability_witness_changes_txid_not_digest(self):
        """Pre-SegWit malleability: re-witnessing preserves the signing
        digest (signatures stay valid) but changes the txid — the MtGox
        attack vector from the paper's introduction."""
        tx = _simple_tx()
        mauled = tx.with_witnesses(
            [Witness((KP.public_key,), (KP.sign(tx.signing_digest()),))]
        )
        assert mauled.signing_digest() == tx.signing_digest()
        assert mauled.txid != tx.txid
        assert mauled.conflicts_with(tx)

    def test_with_witnesses_arity(self):
        with pytest.raises(ChainValidationError):
            _simple_tx().with_witnesses([])

    def test_size_and_total(self):
        tx = BitcoinTransaction(
            [TxInput(OutPoint("a" * 64, 0)), TxInput(OutPoint("b" * 64, 1))],
            [TxOutput(5, P2PKScript("pk")), TxOutput(7, P2PKScript("pk2"))],
        )
        assert tx.size == 4
        assert tx.total_output_value == 12

    def test_equality_by_txid(self):
        assert _simple_tx() == _simple_tx()
        assert len({_simple_tx(), _simple_tx(1)}) == 2


class TestMerkle:
    def test_single(self):
        assert merkle_root(["aa"]) == "aa"

    def test_pair_order_sensitive(self):
        assert merkle_root(["a", "b"]) != merkle_root(["b", "a"])

    def test_odd_count_duplicates_last(self):
        assert merkle_root(["a", "b", "c"]) == merkle_root(["a", "b", "c", "c"])

    def test_empty(self):
        assert merkle_root([])  # defined, stable
        assert merkle_root([]) == merkle_root([])


class TestBlocks:
    def _block(self, nonce=0):
        coinbase = BitcoinTransaction([], [TxOutput(50, P2PKScript("pk"))])
        return Block(0, GENESIS_PREV_HASH, (coinbase,), nonce=nonce)

    def test_needs_transactions(self):
        with pytest.raises(ChainValidationError):
            Block(0, GENESIS_PREV_HASH, ())

    def test_header_hash_covers_nonce(self):
        assert self._block(0).header_hash() != self._block(1).header_hash()

    def test_deterministic_timestamp(self):
        assert self._block().timestamp == 0
        coinbase = BitcoinTransaction([], [TxOutput(50, P2PKScript("pk"))])
        later = Block(7, "0" * 64, (coinbase,))
        assert later.timestamp == 7 * 600

    def test_solve_meets_difficulty(self):
        solved = self._block().solve(1)
        assert meets_difficulty(solved.header_hash(), 1)

    def test_difficulty_zero_is_trivial(self):
        assert meets_difficulty(self._block().header_hash(), 0)

    def test_solve_gives_up(self):
        with pytest.raises(ChainValidationError):
            self._block().solve(10, max_attempts=3)
