"""Double-spend surveillance."""

import pytest

from repro.bitcoin.alerts import DoubleSpendWatcher
from repro.bitcoin.chain import Blockchain
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.mining import Miner
from repro.bitcoin.transactions import COIN, TxOutput
from repro.bitcoin.wallet import Wallet

ALICE = Wallet(KeyPair.generate("alice"), name="alice")
BOB = Wallet(KeyPair.generate("bob"), name="bob")
MINER = Miner(KeyPair.generate("miner").public_key)


@pytest.fixture
def setup():
    chain = Blockchain()
    chain.append_genesis(
        [TxOutput(20 * COIN, ALICE.script), TxOutput(10 * COIN, BOB.script)]
    )
    pool = Mempool(allow_conflicts=True)
    return chain, pool


def test_no_alerts_on_clean_mempool(setup):
    chain, pool = setup
    tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
    pool.add(tx, chain)
    watcher = DoubleSpendWatcher(chain, pool)
    assert watcher.scan() == []
    assert watcher.conflict_pairs() == []


def test_conflict_alert(setup):
    chain, pool = setup
    original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
    conflict = ALICE.bump_fee(chain.utxos, original, 700)
    pool.add(original, chain)
    pool.add(conflict, chain)
    watcher = DoubleSpendWatcher(chain, pool)
    alerts = watcher.scan()
    assert [a.kind for a in alerts] == ["conflict"]
    assert set(alerts[0].txids) == {original.txid, conflict.txid}


def test_scan_deduplicates(setup):
    chain, pool = setup
    original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
    conflict = ALICE.bump_fee(chain.utxos, original, 700)
    pool.add(original, chain)
    pool.add(conflict, chain)
    watcher = DoubleSpendWatcher(chain, pool)
    assert watcher.scan()
    assert watcher.scan() == []  # already reported


def test_watched_payer_alert(setup):
    chain, pool = setup
    original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
    conflict = ALICE.bump_fee(chain.utxos, original, 700)
    pool.add(original, chain)
    pool.add(conflict, chain)
    watcher = DoubleSpendWatcher(
        chain, pool, watched_owners=[ALICE.public_key]
    )
    kinds = [a.kind for a in watcher.scan()]
    assert kinds == ["conflict", "watched-payer-conflict"]


def test_incoming_died_alert(setup):
    chain, pool = setup
    original = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
    conflict = ALICE.bump_fee(chain.utxos, original, 9000)
    pool.add(original, chain)
    pool.add(conflict, chain)
    watcher = DoubleSpendWatcher(chain, pool, watched_owners=[BOB.public_key])
    watcher.scan()
    # Miner confirms the higher-fee version (which also pays Bob, but the
    # point is the *loser* tx dies: here both pay Bob, so craft a loser
    # that pays Bob while the winner pays someone else).
    carol = Wallet(KeyPair.generate("carol"))
    to_carol = ALICE.create_payment(chain.utxos, carol.public_key, COIN, 50_000)
    # to_carol spends the same outpoint as original/conflict.
    assert to_carol.conflicts_with(original)
    pool.add(to_carol, chain)
    block = MINER.build_block(chain, [to_carol])
    chain.append_block(block)
    alerts = watcher.on_block({tx.txid for tx in block.transactions})
    kinds = {a.kind for a in alerts}
    assert "incoming-died" in kinds
    dead = {txid for a in alerts for txid in a.txids}
    assert original.txid in dead


def test_payer_of(setup):
    chain, pool = setup
    tx = ALICE.create_payment(chain.utxos, BOB.public_key, COIN, 100)
    watcher = DoubleSpendWatcher(chain, pool)
    assert watcher.payer_of(tx) == {ALICE.public_key}
