"""Toy keys, addresses, signatures and output scripts."""

import pytest

from repro.bitcoin.keys import KeyPair, address_of, sign, verify_signature
from repro.bitcoin.script import (
    HashLockScript,
    MultiSigScript,
    P2PKHScript,
    P2PKScript,
    Witness,
)
from repro.errors import ChainValidationError


class TestKeys:
    def test_deterministic_generation(self):
        a = KeyPair.generate("seed")
        b = KeyPair.generate("seed")
        c = KeyPair.generate("other")
        assert a.public_key == b.public_key
        assert a.public_key != c.public_key

    def test_sign_verify_roundtrip(self):
        kp = KeyPair.generate(1)
        sig = kp.sign("digest")
        assert verify_signature(kp.public_key, "digest", sig)
        assert not verify_signature(kp.public_key, "other", sig)
        assert not verify_signature(KeyPair.generate(2).public_key, "digest", sig)

    def test_module_level_sign(self):
        kp = KeyPair.generate(1)
        assert sign(kp.private_key, "d") == kp.sign("d")

    def test_address_is_stable(self):
        kp = KeyPair.generate(1)
        assert kp.address == address_of(kp.public_key)
        assert kp.address.startswith("addr_")


class TestWitness:
    def test_parallel_lists_enforced(self):
        with pytest.raises(ChainValidationError):
            Witness(("pk",), ())


class TestScripts:
    def setup_method(self):
        self.kp = KeyPair.generate("owner")
        self.other = KeyPair.generate("other")
        self.digest = "tx-digest"

    def _witness(self, keypair):
        return Witness((keypair.public_key,), (keypair.sign(self.digest),))

    def test_p2pk(self):
        script = P2PKScript(self.kp.public_key)
        assert script.satisfied_by(self._witness(self.kp), self.digest)
        assert not script.satisfied_by(self._witness(self.other), self.digest)
        assert script.owner == self.kp.public_key

    def test_p2pk_wrong_digest(self):
        script = P2PKScript(self.kp.public_key)
        stale = Witness((self.kp.public_key,), (self.kp.sign("other"),))
        assert not script.satisfied_by(stale, self.digest)

    def test_p2pkh(self):
        script = P2PKHScript(self.kp.address)
        assert script.satisfied_by(self._witness(self.kp), self.digest)
        assert not script.satisfied_by(self._witness(self.other), self.digest)
        assert script.owner == self.kp.address

    def test_multisig(self):
        keys = [KeyPair.generate(i) for i in range(3)]
        script = MultiSigScript(2, tuple(k.public_key for k in keys))
        two = Witness(
            (keys[0].public_key, keys[2].public_key),
            (keys[0].sign(self.digest), keys[2].sign(self.digest)),
        )
        assert script.satisfied_by(two, self.digest)
        one = Witness((keys[0].public_key,), (keys[0].sign(self.digest),))
        assert not script.satisfied_by(one, self.digest)

    def test_multisig_duplicate_signer_rejected(self):
        keys = [KeyPair.generate(i) for i in range(2)]
        script = MultiSigScript(2, tuple(k.public_key for k in keys))
        duplicated = Witness(
            (keys[0].public_key, keys[0].public_key),
            (keys[0].sign(self.digest),) * 2,
        )
        assert not script.satisfied_by(duplicated, self.digest)

    def test_multisig_bad_m(self):
        with pytest.raises(ChainValidationError):
            MultiSigScript(0, ("pk",))
        with pytest.raises(ChainValidationError):
            MultiSigScript(3, ("pk1", "pk2"))

    def test_hashlock(self):
        script = HashLockScript.for_preimage("secret")
        assert script.satisfied_by(Witness(preimage="secret"), self.digest)
        assert not script.satisfied_by(Witness(preimage="wrong"), self.digest)
        assert not script.satisfied_by(Witness(), self.digest)

    def test_serialize_unique(self):
        scripts = [
            P2PKScript("pk"),
            P2PKHScript("addr"),
            MultiSigScript(1, ("pk",)),
            HashLockScript.for_preimage("x"),
        ]
        assert len({s.serialize() for s in scripts}) == 4
