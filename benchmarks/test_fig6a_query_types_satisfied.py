"""Figure 6a: execution time per query type, *satisfied* constraints.

Paper shape: every run completes in a few milliseconds — the monotone
``q(R ∪ T)`` short-circuit answers without enumerating worlds.
"""

import pytest

from benchmarks.queryset import algorithms_for, satisfied_queries

QUERIES = satisfied_queries()
CASES = [
    (name, algorithm)
    for name in QUERIES
    for algorithm in algorithms_for(name)
]


@pytest.mark.parametrize("name,algorithm", CASES, ids=lambda c: str(c))
def test_fig6a_satisfied(benchmark, default_checker, name, algorithm):
    query = QUERIES[name]

    result = benchmark(default_checker.check, query, algorithm=algorithm)
    assert result.satisfied
    assert result.stats.short_circuit_used
    # Shape assertion: the short-circuit avoided world enumeration.
    assert result.stats.worlds_checked == 0
