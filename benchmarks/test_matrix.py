"""The full configuration matrix on one workload: every solver
algorithm, over every backend, under every evaluation engine the
backend supports — all cells must agree on the verdict, and every
cell's median wall clock lands in the session's ``BENCH_<rev>.json``
(see :func:`benchmarks.conftest.record_bench`).

The workload is a single K-clique fd-graph component (every pending
transaction writes the same key), so each check sweeps exactly K
singleton worlds — small enough that the ``naive`` solver stays
tractable, structured enough that no short-circuit hides the sweep.
"""

from __future__ import annotations

import statistics
import time

import pytest

from benchmarks.conftest import record_bench
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.relational.constraints import ConstraintSet, FunctionalDependency
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction

K = 12
ROUNDS = 3
Q = "q() <- R(k, 'v0'), R(k, 'v1')"

ALGORITHMS = ("naive", "opt", "assign")
#: backend -> engines it can run (memory evaluates in-process only).
CONFIGURATIONS = {
    "memory": ("sync",),
    "sqlite": ("sync", "batched"),
}


def clique_db() -> BlockchainDatabase:
    schema = make_schema({"R": ["k", "v"]})
    constraints = ConstraintSet(schema, [FunctionalDependency("R", ["k"], ["v"])])
    state = Database.from_dict(schema, {"R": []})
    pending = [
        Transaction({"R": [(0, f"v{index}")]}, tx_id=f"T{index}")
        for index in range(K)
    ]
    return BlockchainDatabase(state, constraints, pending)


_checkers: dict[tuple[str, str], DCSatChecker] = {}


def checker_for(backend: str, engine: str) -> DCSatChecker:
    key = (backend, engine)
    if key not in _checkers:
        _checkers[key] = DCSatChecker(clique_db(), backend=backend, engine=engine)
    return _checkers[key]


@pytest.mark.parametrize(
    "backend,engine",
    [(b, e) for b, engines in CONFIGURATIONS.items() for e in engines],
)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_matrix_cell(algorithm, backend, engine):
    checker = checker_for(backend, engine)
    timings = []
    result = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = checker.check(Q, algorithm=algorithm)
        timings.append(time.perf_counter() - started)
    assert result is not None and result.satisfied
    # The world-sweeping solvers count worlds; the assignment solver
    # counts assignments.  Either way, real work must have happened.
    assert result.stats.worlds_checked or result.stats.assignments_examined
    record_bench(
        "matrix.k_clique",
        gate=True,
        algorithm=algorithm,
        engine=engine,
        backend=backend,
        k=K,
        seconds=statistics.median(timings),
        worlds_checked=result.stats.worlds_checked,
        evaluations=result.stats.evaluations,
    )
