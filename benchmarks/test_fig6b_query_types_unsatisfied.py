"""Figure 6b: execution time per query type, *unsatisfied* constraints.

Paper shape: runtimes grow to seconds; OptDCSat is usually (not always —
q_r3 is the paper's counterexample) faster than NaiveDCSat because its
components induce far smaller possible worlds.
"""

import pytest

from benchmarks.conftest import cached_picker
from benchmarks.queryset import algorithms_for, unsatisfied_queries

CASES = [
    (name, algorithm)
    for name in ("qs", "qp3", "qr3", "qa")
    for algorithm in algorithms_for(name)
]


@pytest.mark.parametrize("name,algorithm", CASES, ids=lambda c: str(c))
def test_fig6b_unsatisfied(benchmark, default_checker, name, algorithm):
    queries = unsatisfied_queries(cached_picker("D200-S"))
    query = queries[name]

    result = benchmark(default_checker.check, query, algorithm=algorithm)
    assert not result.satisfied
    assert result.witness  # the violating world needs pending txs
