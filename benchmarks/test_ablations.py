"""Ablations: the design choices Section 6.3 calls out, toggled.

* Bron–Kerbosch pivoting on/off (the Tomita optimization [44]);
* the ``Covers`` constant pruning on/off (OptDCSat line 2);
* the ``q(R ∪ T)`` short-circuit on/off (satisfied constraints);
* the memory overlay vs. the SQL backend (the paper's Postgres path);
* the assignment-driven solver vs. the paper's two algorithms.
"""

import pytest

from benchmarks.conftest import cached_checker, cached_picker
from benchmarks.queryset import satisfied_queries
from repro.workloads.queries import path_constraint, simple_constraint


def _unsat_path(length=3):
    picker = cached_picker("D200-S")
    source, sink = picker.path_endpoints(length)
    return path_constraint(length, source, sink)


class TestPivoting:
    @pytest.mark.parametrize("pivot", [True, False], ids=["pivot", "no-pivot"])
    def test_pivot_ablation(self, benchmark, pivot):
        checker = cached_checker("D200-S")
        query = _unsat_path()
        result = benchmark(
            checker.check, query, algorithm="naive", pivot=pivot
        )
        assert not result.satisfied


class TestCoveragePruning:
    @pytest.mark.parametrize(
        "use_coverage", [True, False], ids=["covers", "no-covers"]
    )
    def test_coverage_ablation(self, benchmark, use_coverage):
        checker = cached_checker("D200-S")
        query = _unsat_path()
        result = benchmark(
            checker.check, query, algorithm="opt", use_coverage=use_coverage
        )
        assert not result.satisfied


class TestShortCircuit:
    @pytest.mark.parametrize(
        "short_circuit", [True, False], ids=["shortcircuit", "full-run"]
    )
    def test_short_circuit_ablation(self, benchmark, short_circuit):
        """Satisfied constraint: with the short-circuit the answer is one
        overlay evaluation; without it, full clique enumeration runs."""
        checker = cached_checker("D200-S")
        query = satisfied_queries()["qs"]
        result = benchmark(
            checker.check, query, algorithm="opt", short_circuit=short_circuit
        )
        assert result.satisfied


class TestBackends:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_backend_ablation(self, benchmark, backend):
        """The SQL path pays for real UPDATE-based ``current`` flips and
        SQL evaluation per world — the cost profile the paper reports."""
        checker = cached_checker("D200-S", backend=backend)
        query = _unsat_path()
        result = benchmark(checker.check, query, algorithm="opt")
        assert not result.satisfied


class TestSolverComparison:
    @pytest.mark.parametrize("algorithm", ["naive", "opt", "assign"])
    def test_solver_comparison(self, benchmark, algorithm):
        checker = cached_checker("D200-S")
        picker = cached_picker("D200-S")
        query = simple_constraint(picker.pending_recipient())
        result = benchmark(checker.check, query, algorithm=algorithm)
        assert not result.satisfied
