"""Incremental verdict maintenance under mempool churn, measured.

A seeded trace of mempool events — arrivals, mined transactions
(:meth:`~repro.bitcoin.mempool.Mempool.remove_confirmed` + relational
commits), fee evictions — drives two monitors over the same Bitcoin
world: one maintaining verdicts through the component-scoped verdict
ledger (the default), one recomputing from scratch
(``incremental=False``).  After every event both monitors re-answer the
same standing battery of double-spend constraints; the per-event
latencies land as raw samples in ``BENCH_<rev>.json`` and the gated row
asserts the ledger's median per-event win.

The world holds one *contested outpoint*: a payer fee-bumps the same
payment ``REPRO_BENCH_CHURN_CLIQUE`` times, so the mempool carries a
clique of mutually-conflicting replacements — one possible world per
clique member.  Each monitored constraint pins two replacements ("both
of these in one world" — satisfied, superset-true), so a fresh check
must sweep every world of the clique while the ledger re-answers from
the clean component entry.  Ordinary single-input payments churn around
the clique; mined commits grow the committed state and blanket-dirty
the ledger, so the trace keeps them a realistic minority.

Sized by ``REPRO_BENCH_CHURN_EVENTS`` / ``_CLIQUE`` / ``_CONSTRAINTS``
/ ``_MIN_SPEEDUP``; docs/INCREMENTAL.md describes the machinery.
"""

from __future__ import annotations

import os
import random
import statistics
import time

from benchmarks.conftest import record_bench
from repro.bitcoin.chain import Blockchain
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.relmap import (
    chain_resolver,
    to_blockchain_database,
    transaction_to_relational,
)
from repro.bitcoin.script import P2PKScript
from repro.bitcoin.transactions import COIN, TxOutput
from repro.bitcoin.wallet import Wallet
from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


EVENTS = _env_int("REPRO_BENCH_CHURN_EVENTS", 40)
CLIQUE = _env_int("REPRO_BENCH_CHURN_CLIQUE", 32)
CONSTRAINTS = _env_int("REPRO_BENCH_CHURN_CONSTRAINTS", 6)
MIN_SPEEDUP = _env_int("REPRO_BENCH_CHURN_MIN_SPEEDUP", 5)
SEED = _env_int("REPRO_BENCH_CHURN_SEED", 100)
#: Ordinary (non-clique) transactions resident before the trace starts.
WARM_ORDINARY = 12


def double_spend_query(tx1: str, tx2: str) -> str:
    """Both of these replacements in the same possible world: the shared
    ``(prevTxId, prevSer)`` join pins the contested outpoint, and the
    ``TxIn`` key makes the conjunction unsatisfiable — a verdict only a
    full sweep of the clique's component can prove."""
    return (
        f"q() <- TxIn(p, s, k, a, '{tx1}', g1), "
        f"TxIn(p, s, k, a, '{tx2}', g2)"
    )


def build_world():
    """A genesis-funded chain, a contested-outpoint conflict clique and
    a pool of independent single-input payments for the trace."""
    ordinary_count = WARM_ORDINARY + EVENTS
    contester = Wallet(KeyPair.generate(f"{SEED}:contester"), name="contester")
    payers = [
        Wallet(KeyPair.generate(f"{SEED}:payer:{i}"), name=f"payer{i}")
        for i in range(ordinary_count)
    ]
    sink = KeyPair.generate(f"{SEED}:sink").public_key

    # One genesis block funds everyone; the coinbase is capped at the
    # block subsidy, so the payers split what the contester leaves.
    chain = Blockchain(difficulty=0)
    share = (48 * COIN) // ordinary_count
    assert share > 200_000, "trace too long for one genesis subsidy"
    outputs = [TxOutput(2 * COIN, P2PKScript(contester.public_key))]
    outputs += [TxOutput(share, P2PKScript(w.public_key)) for w in payers]
    chain.append_genesis(outputs)

    # The clique: one payment plus CLIQUE - 1 fee bumps, all spending the
    # contester's single genesis output — pairwise TxIn-key conflicts.
    original = contester.create_payment(chain.utxos, sink, 1_000, 10)
    clique = [original]
    for extra in range(1, CLIQUE):
        clique.append(contester.bump_fee(chain.utxos, original, extra))

    rng = random.Random(SEED)
    ordinary = [
        payer.create_payment(
            chain.utxos, sink, rng.randint(1_000, 50_000), rng.randint(1, 50)
        )
        for payer in payers
    ]
    return chain, clique, ordinary


def test_churn_ledger_beats_recompute():
    chain, clique, ordinary = build_world()
    assert len(clique) >= 2 * CONSTRAINTS, "clique too small for the battery"
    protected = {tx.txid for tx in clique}
    warm = list(clique) + ordinary[:WARM_ORDINARY]
    arrivals = ordinary[WARM_ORDINARY:]
    resolve = chain_resolver(chain)

    mempool = Mempool(allow_conflicts=True)
    for tx in warm:
        mempool.add(tx, chain)

    ledger_monitor = ConstraintMonitor(
        DCSatChecker(to_blockchain_database(chain, warm)), incremental=True
    )
    recompute_monitor = ConstraintMonitor(
        DCSatChecker(to_blockchain_database(chain, warm)), incremental=False
    )
    monitors = (ledger_monitor, recompute_monitor)
    names = []
    for index in range(CONSTRAINTS):
        name = f"double-spend-{index}"
        names.append(name)
        query = double_spend_query(
            clique[2 * index].txid, clique[2 * index + 1].txid
        )
        for monitor in monitors:
            monitor.register(name, query)

    def status_seconds(monitor) -> float:
        started = time.perf_counter()
        for name in names:
            result = monitor.status(name, use_subsumption=False)
            assert result.satisfied, f"{name} must stay satisfied"
        return time.perf_counter() - started

    # Warm both monitors (and the ledger) once before the trace.
    for monitor in monitors:
        status_seconds(monitor)

    rng = random.Random(SEED)
    ledger_samples: list[float] = []
    recompute_samples: list[float] = []
    applied = {"arrival": 0, "mined": 0, "eviction": 0, "skipped": 0}
    for _ in range(EVENTS):
        kind = rng.choices(
            ["arrival", "mined", "eviction"], weights=[6, 1, 2]
        )[0]
        if kind == "arrival" and not arrivals:
            kind = "eviction"
        if kind == "arrival":
            tx = arrivals.pop(0)
            mempool.add(tx, chain)
            relational = transaction_to_relational(tx, resolve)
            for monitor in monitors:
                monitor.issue(relational)
        else:
            candidates = [
                txid for txid in mempool._txs if txid not in protected
            ]
            if not candidates:
                applied["skipped"] += 1
                continue
            txid = candidates[rng.randrange(len(candidates))]
            if kind == "mined":
                mempool.remove_confirmed({txid})
                for monitor in monitors:
                    monitor.commit(txid)
            else:
                mempool.remove(txid)
                for monitor in monitors:
                    monitor.forget(txid)
        applied[kind] += 1
        ledger_samples.append(status_seconds(ledger_monitor))
        recompute_samples.append(status_seconds(recompute_monitor))

    assert len(ledger_samples) >= EVENTS // 2, applied
    ledger_s = statistics.median(ledger_samples)
    recompute_s = statistics.median(recompute_samples)
    speedup = recompute_s / ledger_s if ledger_s else float("inf")
    counters = ledger_monitor.ledger.counters
    record_bench(
        "churn.per_event_status",
        gate=True,
        events=len(ledger_samples),
        constraints=len(names),
        clique=len(clique),
        mempool_arrivals=applied["arrival"],
        mined=applied["mined"],
        evictions=applied["eviction"],
        seconds=ledger_s,
        recompute_seconds=recompute_s,
        speedup=speedup,
        components_reused=counters["reused"],
        components_swept=counters["swept"],
        samples=ledger_samples,
    )
    record_bench(
        "churn.per_event_status_recompute",
        events=len(recompute_samples),
        constraints=len(names),
        seconds=recompute_s,
        samples=recompute_samples,
    )
    assert counters["reused"] > 0, "the trace never reused a component"
    assert speedup >= MIN_SPEEDUP, (
        f"ledger median {ledger_s * 1e3:.2f}ms vs recompute "
        f"{recompute_s * 1e3:.2f}ms — only {speedup:.1f}x, "
        f"needed {MIN_SPEEDUP}x ({applied})"
    )
