"""The fabric's reason to exist, measured: B shard *subprocesses*
sweep B batteries' worlds concurrently, beating the single-process
:class:`ShardedMonitor` that sweeps the same shards serially under one
GIL.

Same battery workload as ``test_sharded_monitor`` (B decoupled
batteries, per-key conflicting pending pairs; each key is one
fd-graph component of two worlds, and the satisfied constraint forces
the sweep to visit every component's worlds), with ``KEYS`` raised
until one battery's sweep dwarfs the fabric's per-call RPC overhead.
Fleet spawn time is deliberately *excluded* — the fleet boots once and
serves many sweeps; the steady-state ``status_all`` is what the router
is for.

Both wall clocks land in ``BENCH_<rev>.json`` via
:func:`benchmarks.conftest.record_bench`.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from benchmarks.conftest import record_bench
from repro import serialize
from repro.fabric import FabricMonitor, FleetSupervisor, ShardSpec
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction
from repro.core.blockchain_db import BlockchainDatabase
from repro.service.shard import ShardedMonitor


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


BATTERIES = _env_int("REPRO_BENCH_FABRIC_BATTERIES", 2)
#: Conflicting pending pairs per battery.  The batch sweep decomposes
#: per fd-graph component (one per key, two worlds each), so a
#: battery's sweep costs ``2 * KEYS`` world checks — sized here so one
#: battery's sweep dwarfs a fabric RPC round trip by a wide margin.
KEYS = _env_int("REPRO_BENCH_FABRIC_KEYS", 120)
ROUNDS = _env_int("REPRO_BENCH_FABRIC_ROUNDS", 3)


def battery_db() -> BlockchainDatabase:
    schema = make_schema({f"R{b}": ["k", "v"] for b in range(BATTERIES)})
    constraints = ConstraintSet(
        schema, [Key(f"R{b}", ["k"], schema) for b in range(BATTERIES)]
    )
    state = Database.from_dict(schema, {f"R{b}": [] for b in range(BATTERIES)})
    return BlockchainDatabase(state, constraints)


def battery_transactions() -> list[Transaction]:
    return [
        Transaction({f"R{b}": [(key, value)]}, tx_id=f"B{b}K{key}{value}")
        for b in range(BATTERIES)
        for key in range(KEYS)
        for value in ("a", "b")
    ]


def register_batteries(monitor) -> None:
    for b in range(BATTERIES):
        monitor.register(f"battery-{b}", f"q() <- R{b}(k, 'a'), R{b}(k, 'b')")


def timed_sweeps(monitor, tag: str) -> list[float]:
    timings = []
    for round_index in range(ROUNDS):
        # Absorb one fresh, conflict-free fact per battery: it touches
        # every battery's relation, so *all* verdict caches — router
        # mirrors and shard-side monitors alike — invalidate, and every
        # round pays the full 2^KEYS sweep per battery.  The new key is
        # beyond the conflicting range, so the verdicts never change.
        for b in range(BATTERIES):
            monitor.absorb(
                Transaction(
                    {f"R{b}": [(10_000 + round_index, "a")]},
                    tx_id=f"{tag}W{b}R{round_index}",
                )
            )
        started = time.perf_counter()
        verdicts = monitor.status_all(batch=True)
        timings.append(time.perf_counter() - started)
        assert all(verdicts[f"battery-{b}"].satisfied for b in range(BATTERIES))
    return timings


def test_process_fleet_beats_single_process_shards(tmp_path):
    db_path = str(tmp_path / "batteries.json")
    serialize.dump(battery_db(), db_path)

    sharded = ShardedMonitor(battery_db(), shards=BATTERIES)
    register_batteries(sharded)
    for tx in battery_transactions():
        sharded.issue(tx)

    fleet = FleetSupervisor(ShardSpec(db_path=db_path), shards=BATTERIES)
    fabric = FabricMonitor(battery_db(), fleet)
    try:
        register_batteries(fabric)
        for tx in battery_transactions():
            fabric.issue(tx)

        fabric_timings = timed_sweeps(fabric, "F")
        sharded_timings = timed_sweeps(sharded, "S")
    finally:
        fabric.close()

    fabric_s = statistics.median(fabric_timings)
    sharded_s = statistics.median(sharded_timings)
    cores = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    record_bench(
        "fabric.status_all",
        gate=True,
        batteries=BATTERIES,
        keys=KEYS,
        shards=BATTERIES,
        cores=cores,
        seconds=fabric_s,
        single_process_seconds=sharded_s,
        speedup=sharded_s / fabric_s if fabric_s else float("inf"),
    )
    if cores < 2:
        # One core cannot run two shard subprocesses concurrently; the
        # fabric then pays its RPC overhead with nothing to win.  The
        # timings are recorded above either way.
        pytest.skip(f"speedup needs >= 2 CPU cores, host has {cores}")
    assert fabric_s < sharded_s, (
        f"{BATTERIES} shard subprocesses took {fabric_s:.3f}s vs "
        f"{sharded_s:.3f}s for the single-process sharded monitor"
    )
