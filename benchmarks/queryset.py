"""The benchmark query sets: the paper's four families, instantiated
with satisfying or non-satisfying constants against a dataset."""

from __future__ import annotations

from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.workloads.constants import ConstantPicker, fresh_address
from repro.workloads.queries import (
    aggregate_constraint,
    path_constraint,
    simple_constraint,
    star_constraint,
)

Query = ConjunctiveQuery | AggregateQuery


def satisfied_queries() -> dict[str, Query]:
    """Constants no dataset contains: the constraints hold vacuously."""
    return {
        "qs": simple_constraint(fresh_address("qs")),
        "qp3": path_constraint(3, fresh_address("qp-src"), fresh_address("qp-snk")),
        "qr3": star_constraint(3, fresh_address("qr")),
        "qa": aggregate_constraint(fresh_address("qa"), 100),
    }


def unsatisfied_queries(picker: ConstantPicker) -> dict[str, Query]:
    """Constants mined from the dataset: each constraint has a violating
    possible world that needs pending transactions."""
    source, sink = picker.path_endpoints(3)
    agg_address, agg_threshold = picker.aggregate_target()
    return {
        "qs": simple_constraint(picker.pending_recipient()),
        "qp3": path_constraint(3, source, sink),
        "qr3": star_constraint(3, picker.star_source(3)),
        "qa": aggregate_constraint(agg_address, agg_threshold),
    }


def algorithms_for(name: str) -> tuple[str, ...]:
    """Opt requires connectivity; q_a (aggregate) is not connected, so
    the paper runs it under NaiveDCSat only (Section 7, Query Type)."""
    if name == "qa":
        return ("naive",)
    return ("naive", "opt")
