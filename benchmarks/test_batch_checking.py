"""Batched vs. sequential checking of a constraint battery.

A monitoring node watches many constraints at once; the batch API shares
the maximal-clique sweep across every still-undecided constraint.
"""

import pytest

from benchmarks.conftest import cached_checker, cached_picker
from repro.workloads.queries import (
    aggregate_constraint,
    path_constraint,
    simple_constraint,
)
from repro.workloads.constants import fresh_address


def _battery():
    picker = cached_picker("D200-S")
    source, sink = picker.path_endpoints(3)
    agg_addr, agg_thr = picker.aggregate_target()
    return [
        simple_constraint(picker.pending_recipient()),
        simple_constraint(fresh_address("batch-1")),
        path_constraint(3, source, sink),
        path_constraint(3, fresh_address("batch-2"), fresh_address("batch-3")),
        aggregate_constraint(agg_addr, agg_thr),
        aggregate_constraint(fresh_address("batch-4"), 10),
    ]


def test_sequential_battery(benchmark):
    checker = cached_checker("D200-S")
    battery = _battery()

    def run():
        return [checker.check(q, algorithm="naive") for q in battery]

    results = benchmark(run)
    assert [r.satisfied for r in results] == [False, True, False, True, False, True]


def test_batched_battery(benchmark):
    checker = cached_checker("D200-S")
    battery = _battery()

    results = benchmark(checker.check_batch, battery)
    assert [r.satisfied for r in results] == [False, True, False, True, False, True]
