"""Table 1: dataset statistics.

The paper's Table 1 reports, for D100/D200/D300, the number of blocks,
transactions, input rows and output rows of the current state and of the
pending set.  This benchmark generates the scaled analogues, prints the
same table shape, and measures the end-to-end cost of building the
relational image (the paper's "parse the chain into Postgres" step).
"""

import pytest

from benchmarks.conftest import cached_dataset
from repro.bitcoin.relmap import to_blockchain_database

PRESETS = ["D100-S", "D200-S", "D300-S"]

_printed = False


def _print_table() -> None:
    global _printed
    if _printed:
        return
    _printed = True
    header = f"{'R':<8}{'Blocks':>8}{'Transactions':>14}{'Input':>8}{'Output':>8}"
    print("\n" + "=" * 66)
    print("Table 1: Datasets (scaled-down analogues of the paper's table)")
    print("=" * 66)
    print(header)
    for name in PRESETS:
        stats = cached_dataset(name).stats()
        print(
            f"{name:<8}{stats.blocks:>8}{stats.transactions:>14}"
            f"{stats.inputs:>8}{stats.outputs:>8}"
        )
    print()
    print(f"{'T':<8}{'Blocks':>8}{'Transactions':>14}{'Input':>8}{'Output':>8}")
    for name in PRESETS:
        stats = cached_dataset(name).stats()
        print(
            f"{name:<8}{stats.pending_blocks:>8}{stats.pending_transactions:>14}"
            f"{stats.pending_inputs:>8}{stats.pending_outputs:>8}"
        )
    print("=" * 66)


@pytest.mark.parametrize("name", PRESETS)
def test_table1_relational_image(benchmark, name):
    """Benchmark: chain + mempool -> blockchain database (R, I, T)."""
    dataset = cached_dataset(name)
    _print_table()

    db = benchmark(
        to_blockchain_database, dataset.chain, dataset.pending
    )
    stats = dataset.stats()
    assert len(db.current["TxOut"]) == stats.outputs
    assert len(db.current["TxIn"]) == stats.inputs
    assert len(db.pending) == stats.pending_transactions
    # Structural trend of the paper's Table 1: denser later datasets.
    assert stats.outputs > stats.transactions
