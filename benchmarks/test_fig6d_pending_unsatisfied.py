"""Figure 6d: varying the number of pending transactions, unsatisfied q_p3.

Paper shape: OptDCSat consistently beats NaiveDCSat, and the gap widens
with the pending set (Naive's maximal worlds contain every compatible
pending transaction; Opt's stay component-sized).
"""

import pytest

from benchmarks.conftest import cached_checker, cached_picker
from benchmarks.test_fig6c_pending_satisfied import PENDING_BLOCKS, _spec
from repro.workloads.queries import path_constraint

CASES = [
    (blocks, algorithm)
    for blocks in PENDING_BLOCKS
    for algorithm in ("naive", "opt")
]


@pytest.mark.parametrize("pending_blocks,algorithm", CASES, ids=lambda c: str(c))
def test_fig6d_pending_unsatisfied(benchmark, pending_blocks, algorithm):
    spec = _spec(pending_blocks)
    checker = cached_checker(spec)
    picker = cached_picker(spec)
    source, sink = picker.path_endpoints(3)
    query = path_constraint(3, source, sink)

    result = benchmark(checker.check, query, algorithm=algorithm)
    assert not result.satisfied
