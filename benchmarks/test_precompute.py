"""Steady-state precomputation costs (Section 6.3).

The paper maintains its data structures incrementally as transactions
are issued and committed.  These benchmarks measure (a) building the
precomputed structures from scratch, (b) the incremental cost of one
issue and one commit, and (c) a full world switch on each backend — the
``current``-column flip whose cost Figure 6f revolves around.
"""

import itertools

import pytest

from benchmarks.conftest import cached_dataset
from repro.core.checker import DCSatChecker
from repro.core.fd_graph import FdTransactionGraph
from repro.core.ind_graph import IndQTransactionGraph
from repro.core.workspace import Workspace


def _db(name="D200-S"):
    return cached_dataset(name).to_blockchain_database()


class TestColdStart:
    @pytest.mark.parametrize("name", ["D100-S", "D200-S", "D300-S"])
    def test_fd_graph_build(self, benchmark, name):
        db = _db(name)
        workspace = Workspace(db)
        graph = benchmark(FdTransactionGraph, workspace)
        assert graph.conflict_count() >= 20

    def test_ind_component_index_build(self, benchmark):
        db = _db()
        workspace = Workspace(db)

        def build():
            graph = IndQTransactionGraph(workspace)
            return graph.components()

        components = benchmark(build)
        assert len(components) > 1

    def test_full_checker_construction(self, benchmark):
        db = _db()
        checker = benchmark(DCSatChecker, db)
        assert checker.fd_graph.nodes


class TestIncremental:
    def test_issue_and_forget(self, benchmark):
        checker = DCSatChecker(_db())
        counter = itertools.count()

        def issue_forget():
            from repro.relational.transaction import Transaction

            tx = Transaction(
                {"TxOut": [(f"bench-tx-{next(counter)}", 1, "BenchPk", 1)]},
                tx_id=f"bench-{next(counter)}",
            )
            checker.issue(tx)
            checker.forget(tx.tx_id)

        benchmark(issue_forget)

    def test_world_switch_memory(self, benchmark):
        checker = DCSatChecker(_db())
        ids = list(checker.db.pending_ids)
        half = frozenset(ids[: len(ids) // 2])
        states = itertools.cycle([half, frozenset(ids), frozenset()])

        def switch():
            checker.workspace.set_active(next(states))

        benchmark(switch)

    def test_world_switch_sqlite(self, benchmark):
        """The real UPDATE-based flip — the paper's dominant cost when
        worlds are large (few contradictions, Figure 6f)."""
        checker = DCSatChecker(_db(), backend="sqlite")
        ids = list(checker.db.pending_ids)
        half = frozenset(ids[: len(ids) // 2])
        states = itertools.cycle([half, frozenset(ids), frozenset()])

        def switch():
            checker.backend.set_active(next(states))

        benchmark(switch)
        checker.close()
