"""Sharded monitors vs. one monitor on independent constraint batteries.

The workload is ``BATTERIES`` completely decoupled batteries: battery
*b* lives in its own relation ``Rb(k, v)`` with a key on ``k`` and, per
key, two pending transactions writing conflicting values ``'a'`` /
``'b'``.  Each battery's constraint ``q() <- Rb(k, 'a'), Rb(k, 'b')``
is satisfied — the key keeps the two values out of every possible
world — but it is true on the pending superset, so the monotone
short-circuit cannot decide it and the solver must sweep every maximal
clique.

That sweep is where sharding wins *algorithmically*, not just by
parallelism: the batch sweep enumerates maximal cliques of the global
fd-graph, and independent components multiply, so one monitor holding
all batteries sweeps ``2^(BATTERIES * KEYS)`` worlds while each of
``BATTERIES`` shards — whose routing never imported the other
batteries' transactions — sweeps only ``2^KEYS``.  The win therefore
holds on a single CPU.
"""

from __future__ import annotations

import time

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction
from repro.service.shard import ShardedMonitor

BATTERIES = 2
KEYS = 7  # 2^(2*7) = 16384 global worlds vs. 2 x 2^7 = 256 sharded


def battery_db() -> BlockchainDatabase:
    schema = make_schema(
        {f"R{b}": ["k", "v"] for b in range(BATTERIES)}
    )
    constraints = ConstraintSet(
        schema, [Key(f"R{b}", ["k"], schema) for b in range(BATTERIES)]
    )
    state = Database.from_dict(
        schema, {f"R{b}": [] for b in range(BATTERIES)}
    )
    return BlockchainDatabase(state, constraints)


def battery_transactions() -> list[Transaction]:
    return [
        Transaction({f"R{b}": [(key, value)]}, tx_id=f"B{b}K{key}{value}")
        for b in range(BATTERIES)
        for key in range(KEYS)
        for value in ("a", "b")
    ]


def register_batteries(monitor) -> None:
    for b in range(BATTERIES):
        monitor.register(
            f"battery-{b}", f"q() <- R{b}(k, 'a'), R{b}(k, 'b')"
        )


def test_sharded_sweeps_beat_one_global_sweep():
    single = ConstraintMonitor(DCSatChecker(battery_db()))
    sharded = ShardedMonitor(battery_db(), shards=BATTERIES)
    register_batteries(single)
    register_batteries(sharded)
    for tx in battery_transactions():
        assert single.issue(tx) == sharded.issue(tx)

    started = time.perf_counter()
    expected = single.status_all(batch=True)
    single_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    actual = sharded.status_all(batch=True)
    sharded_elapsed = time.perf_counter() - started

    assert set(actual) == set(expected)
    for name in expected:
        assert actual[name].satisfied is expected[name].satisfied is True

    # Every shard kept only its own battery: 2^KEYS worlds per shard
    # instead of the 2^(BATTERIES*KEYS) global product.
    for detail in sharded.describe()["detail"]:
        assert detail["pending"] == 2 * KEYS

    from benchmarks.conftest import record_bench

    record_bench(
        "sharded_monitor.status_all",
        batteries=BATTERIES,
        keys=KEYS,
        shards=BATTERIES,
        seconds=sharded_elapsed,
        single_monitor_seconds=single_elapsed,
        speedup=single_elapsed / sharded_elapsed if sharded_elapsed else 0.0,
    )
    assert sharded_elapsed < single_elapsed, (
        f"{BATTERIES} shards took {sharded_elapsed:.3f}s vs "
        f"{single_elapsed:.3f}s for one monitor"
    )


def test_verdicts_identical_after_commits():
    # Commit one transaction per battery and re-check: routing must
    # keep the shards verdict-identical to the single monitor.
    single = ConstraintMonitor(DCSatChecker(battery_db()))
    sharded = ShardedMonitor(battery_db(), shards=BATTERIES)
    register_batteries(single)
    register_batteries(sharded)
    for tx in battery_transactions():
        single.issue(tx)
        sharded.issue(tx)
    for b in range(BATTERIES):
        assert single.commit(f"B{b}K0a") == sharded.commit(f"B{b}K0a")
    expected = single.status_all(batch=True)
    actual = sharded.status_all(batch=True)
    for name in expected:
        assert actual[name].satisfied is expected[name].satisfied
