"""Parallel per-component OptDCSat vs. the sequential solver.

The workload is built so the ind-q-transaction graph has one *heavy*
connected component per chain id.  The FD ``cid -> v`` forces a
uniform value per cid in every possible world, and both benchmark
queries join their atoms only on ``c`` — so Θ_q links all of a cid's
transactions into one component.  Each component holds ``KEYS × VALUES``
pending transactions and exactly ``VALUES`` maximal cliques (one
all-same-value world per value, ``KEYS`` facts each).

``Q_SATISFIED`` needs values ``'v0'`` and ``'v1'`` to coexist in one
cid — impossible in any uniform-value world, but true on the full
(inconsistent) pending superset, so the monotone short-circuit cannot
decide it and the solver must enumerate and evaluate every clique of
every component.  That is the embarrassingly parallel case the pool
fans out (Proposition 2: no satisfying assignment spans components).

Verdict-identity assertions always run; the wall-clock speedup
assertion only runs on multi-core hosts (the pool cannot beat the
sequential solver on one CPU).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.relational.constraints import ConstraintSet, FunctionalDependency
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction
from repro.service.pool import PooledDCSatChecker


def _env_int(name: str, default: int) -> int:
    """A ``REPRO_BENCH_*`` override, for quick CI smoke configurations."""
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


COMPONENTS = _env_int("REPRO_BENCH_COMPONENTS", 8)
KEYS = _env_int("REPRO_BENCH_KEYS", 24)
VALUES = _env_int("REPRO_BENCH_VALUES", 24)
POOL_WORKERS = _env_int("REPRO_BENCH_WORKERS", 4)
#: On scaled-down smoke configs the pool's fixed overhead dominates,
#: so the speedup assertion only runs at the full default scale.
DEFAULT_SCALE = (COMPONENTS, KEYS, VALUES) == (8, 24, 24)

#: Unsatisfiable in every world (worlds are uniform-value per cid), yet
#: true on the pending superset: forces the full clique sweep.
Q_SATISFIED = "q() <- R(c, k1, 'v0'), R(c, k2, 'v1')"
#: Satisfiable (the all-'v0' world of any cid): violated, with the
#: witness taken from the lowest-index component.
Q_VIOLATED = "q() <- R(c, k1, 'v0'), R(c, k2, 'v0'), k1 != k2"
QUERYSET = [Q_SATISFIED, Q_VIOLATED]


def uniform_value_db(
    components: int = COMPONENTS, keys: int = KEYS, values: int = VALUES
) -> BlockchainDatabase:
    schema = make_schema({"R": ["cid", "k", "v"]})
    constraints = ConstraintSet(
        schema, [FunctionalDependency("R", ["cid"], ["v"])]
    )
    state = Database.from_dict(schema, {"R": []})
    pending = [
        Transaction({"R": [(cid, key, f"v{v}")]}, tx_id=f"C{cid}K{key}V{v}")
        for cid in range(components)
        for key in range(keys)
        for v in range(values)
    ]
    return BlockchainDatabase(state, constraints, pending)


_cache: dict[str, object] = {}


def sequential_checker() -> DCSatChecker:
    if "seq" not in _cache:
        _cache["seq"] = DCSatChecker(uniform_value_db())
    return _cache["seq"]


def pooled_checker() -> PooledDCSatChecker:
    if "pool" not in _cache:
        checker = PooledDCSatChecker(uniform_value_db(), max_workers=POOL_WORKERS)
        checker.check(Q_VIOLATED)  # build the executor + worker snapshots
        _cache["pool"] = checker
    return _cache["pool"]


def test_sequential_opt(benchmark):
    checker = sequential_checker()
    result = benchmark(checker.check, Q_SATISFIED, algorithm="opt")
    assert result.satisfied
    assert result.stats.components_total == COMPONENTS
    assert result.stats.cliques_enumerated == COMPONENTS * VALUES


def test_parallel_pool(benchmark):
    checker = pooled_checker()
    result = benchmark(checker.check, Q_SATISFIED)
    assert result.satisfied
    assert result.stats.parallel_tasks == COMPONENTS


def test_parallel_beats_sequential_with_identical_verdicts():
    sequential = sequential_checker()
    pooled = pooled_checker()

    sequential_elapsed = 0.0
    parallel_elapsed = 0.0
    for query in QUERYSET:
        started = time.perf_counter()
        expected = sequential.check(query, algorithm="opt")
        sequential_elapsed += time.perf_counter() - started

        started = time.perf_counter()
        actual = pooled.check(query)
        parallel_elapsed += time.perf_counter() - started

        assert actual.satisfied == expected.satisfied
        assert actual.witness == expected.witness

    if (os.cpu_count() or 1) >= 2 and DEFAULT_SCALE:
        assert parallel_elapsed < sequential_elapsed, (
            f"pool of {POOL_WORKERS} took {parallel_elapsed:.3f}s vs "
            f"{sequential_elapsed:.3f}s sequential"
        )


@pytest.fixture(scope="module", autouse=True)
def bench_json_artifact():
    """When a ``BENCH_<rev>.json`` artifact is being written this
    session (see :mod:`benchmarks.conftest`), land one traced pooled
    check — stats plus its span tree — as a row in it."""
    yield
    from benchmarks.conftest import _bench_json_path, record_bench

    if _bench_json_path() is None:
        return
    from repro.obs.trace import default_tracer
    from repro.service.protocol import stats_to_wire

    tracer = default_tracer()
    checker = pooled_checker()
    with tracer.trace("bench_parallel_pool") as root:
        started = time.perf_counter()
        result = checker.check(Q_SATISFIED)
        elapsed = time.perf_counter() - started
        root.fold_stats(result.stats)
    record_bench(
        "parallel_pool.traced_check",
        components=COMPONENTS,
        keys=KEYS,
        values=VALUES,
        workers=POOL_WORKERS,
        seconds=elapsed,
        satisfied=result.satisfied,
        stats=stats_to_wire(result.stats),
        trace=tracer.recent(limit=1)[0],
        gate=True,
    )


def skewed_db(
    giant_keys: int = 18,
    giant_values: int = 12,
    tiny: int = 12,
    tiny_keys: int = 3,
    tiny_values: int = 3,
) -> BlockchainDatabase:
    """One giant component (cid 0) plus *tiny* small ones — the skewed
    workload where round-robin striping rides extra components along
    with the giant while other workers idle."""
    schema = make_schema({"R": ["cid", "k", "v"]})
    constraints = ConstraintSet(
        schema, [FunctionalDependency("R", ["cid"], ["v"])]
    )
    state = Database.from_dict(schema, {"R": []})
    shapes = [(0, giant_keys, giant_values)] + [
        (cid, tiny_keys, tiny_values) for cid in range(1, tiny + 1)
    ]
    pending = [
        Transaction({"R": [(cid, key, f"v{v}")]}, tx_id=f"C{cid}K{key}V{v}")
        for cid, keys, values in shapes
        for key in range(keys)
        for v in range(values)
    ]
    return BlockchainDatabase(state, constraints, pending)


def test_warm_cost_model_groups_skew_tighter_than_round_robin():
    """The tentpole acceptance: on one-giant-plus-many-tiny, a warm cost
    model bin-packs the giant component alone, with measurably lower
    predicted makespan imbalance than round-robin striping — and the
    verdicts never change."""
    from repro.obs.perf import CostModel
    from repro.service.pool import SolverPool, group_imbalance

    giant_keys, giant_values, tiny, tiny_keys, tiny_values = 18, 12, 12, 3, 3
    sequential = DCSatChecker(
        skewed_db(giant_keys, giant_values, tiny, tiny_keys, tiny_values)
    )
    checker = DCSatChecker(
        skewed_db(giant_keys, giant_values, tiny, tiny_keys, tiny_values)
    )
    model = CostModel(export_metrics=False)
    pool = SolverPool(checker, max_workers=4, cost_model=model)
    try:
        # Cold pool: the first check plans round-robin and, component by
        # component, teaches the model what each size bucket costs.
        assert not model.warm
        expected = sequential.check(Q_SATISFIED, algorithm="opt")
        cold = pool.check(Q_SATISFIED)
        assert cold.satisfied == expected.satisfied
        assert model.warm, "one full sweep must warm the model"

        # Same component shapes the solve just saw, as a planning input.
        sizes = [giant_keys * giant_values] + [tiny_keys * tiny_values] * tiny
        survivors = [
            {f"s{i}-{j}" for j in range(size)} for i, size in enumerate(sizes)
        ]
        cost_groups, strategy, _ = pool.plan_groups(survivors)
        assert strategy == "cost"
        rr_groups, _, _ = pool.plan_groups(survivors, strategy="round-robin")

        def predicted_loads(groups):
            return [
                sum(
                    model.predict(
                        len(survivors[index]),
                        engine=pool._engine_name,
                        planner=pool._planner_name,
                    )
                    for index in group
                )
                for group in groups
            ]

        cost_imbalance = group_imbalance(predicted_loads(cost_groups))
        rr_imbalance = group_imbalance(predicted_loads(rr_groups))
        # The cost plan isolates the giant; round-robin makes the
        # giant's worker carry extra tinies on top.
        giant_group = next(group for group in cost_groups if 0 in group)
        assert giant_group == [0]
        assert cost_imbalance < rr_imbalance, (
            f"cost planning imbalance {cost_imbalance:.3f} must beat "
            f"round-robin {rr_imbalance:.3f}"
        )

        # Warm checks (now cost-planned) still verdict-match, violated
        # witnesses included.
        for query in QUERYSET:
            want = sequential.check(query, algorithm="opt")
            got = pool.check(query)
            assert got.satisfied == want.satisfied
            assert got.witness == want.witness

        from benchmarks.conftest import _bench_json_path, record_bench

        if _bench_json_path() is not None:
            record_bench(
                "pool.group_planning",
                components=1 + tiny,
                giant=giant_keys * giant_values,
                tiny=tiny_keys * tiny_values,
                workers=pool.max_workers,
                cost_imbalance=cost_imbalance,
                round_robin_imbalance=rr_imbalance,
            )
    finally:
        pool.shutdown()
        checker.close()
        sequential.close()


def test_parallel_batch_identical_verdicts():
    # batch_dcsat sweeps maximal cliques *globally* (worlds multiply
    # across components), so the batch comparison uses a small workload.
    sequential = DCSatChecker(uniform_value_db(3, 3, 3))
    pooled = PooledDCSatChecker(uniform_value_db(3, 3, 3), max_workers=2)
    try:
        expected = sequential.check_batch(QUERYSET)
        actual = pooled.check_batch(QUERYSET)
        assert [r.satisfied for r in actual] == [r.satisfied for r in expected]
        assert [r.witness for r in actual] == [r.witness for r in expected]
    finally:
        sequential.close()
        pooled.close()
