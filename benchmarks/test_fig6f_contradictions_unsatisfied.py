"""Figure 6f: varying the number of fd-contradictions, unsatisfied q_p3.

Paper shape (and the paper's own surprise): runtime is *highest at few
contradictions* — fewer conflicts mean larger possible worlds, and
selecting the world's tuples (the ``current`` column updates / active
set) dominates.
"""

import pytest

from benchmarks.conftest import cached_checker, cached_picker
from benchmarks.test_fig6e_contradictions_satisfied import CONTRADICTIONS, _spec
from repro.workloads.queries import path_constraint

CASES = [
    (contradictions, algorithm)
    for contradictions in CONTRADICTIONS
    for algorithm in ("naive", "opt")
]


@pytest.mark.parametrize("contradictions,algorithm", CASES, ids=lambda c: str(c))
def test_fig6f_contradictions_unsatisfied(benchmark, contradictions, algorithm):
    spec = _spec(contradictions)
    checker = cached_checker(spec)
    picker = cached_picker(spec)
    source, sink = picker.path_endpoints(3)
    query = path_constraint(3, source, sink)

    result = benchmark(checker.check, query, algorithm=algorithm)
    assert not result.satisfied
