"""Evaluation engines over the sqlite backend: batched vs. per-world.

The workload is one heavy fd-graph component: ``K`` pending
transactions all writing the *same* key of ``R(k, v)`` under the FD
``k -> v``, each with a distinct value.  Every pair conflicts, so the
component's clique structure is ``K`` singleton maximal cliques — ``K``
possible worlds of one transaction each.  ``Q_SATISFIED`` needs two
distinct values to coexist on the key, which no singleton world can
provide while the full pending superset does, so the monotone
short-circuit cannot decide it and every engine must sweep all ``K``
worlds.

That sweep is the engine comparison in its purest form:

* :class:`~repro.core.engine.SyncEngine` pays **K** SQL round trips
  (plus the ``_active`` flag flips between consecutive worlds);
* :class:`~repro.core.engine.BatchedEngine` (``batch_size=K``) compiles
  the world-correlated query once and answers the whole component in
  **one** round trip via the ``__repro_worlds`` CTE.

Round-trip counts are asserted exactly via the backend's
``eval_roundtrips`` counter; the wall-clock assertion runs at every
scale (fewer round trips on the same connection is cheaper regardless
of host).  All engines must agree on verdict and work counters.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.bitset import make_fd_graph
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.engine import BatchedEngine, make_engine
from repro.core.workspace import Workspace
from repro.relational.constraints import ConstraintSet, FunctionalDependency
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


def _env_int(name: str, default: int) -> int:
    """A ``REPRO_BENCH_*`` override, for quick CI smoke configurations."""
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


#: Pairwise-conflicting transactions = worlds in the component's sweep.
CLIQUE_K = _env_int("REPRO_BENCH_CLIQUE_K", 96)
#: Wall-clock comparison repetitions (medians are reported).
ROUNDS = _env_int("REPRO_BENCH_ENGINE_ROUNDS", 3)
#: Component size for the planner (enumeration-only) comparison — the
#: set planner rebuilds its clique subgraph quadratically per sweep,
#: so the gap widens with K.
PLANNER_K = _env_int("REPRO_BENCH_PLANNER_K", 384)
#: Required bitset-over-set speedup on the repeated clique sweep.
PLANNER_MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_BITSET_MIN_SPEEDUP", "5")
)

#: No singleton world holds two values; the pending superset does —
#: the short-circuit stays undecided and the full K-world sweep runs.
Q_SATISFIED = "q() <- R(k, 'v0'), R(k, 'v1')"
#: Violated by every singleton world: the sweep stops at world one.
Q_VIOLATED = "q() <- R(k, v)"

ENGINES = ("sync", "batched", "async")


def k_clique_db(k: int = CLIQUE_K) -> BlockchainDatabase:
    schema = make_schema({"R": ["k", "v"]})
    constraints = ConstraintSet(schema, [FunctionalDependency("R", ["k"], ["v"])])
    state = Database.from_dict(schema, {"R": []})
    pending = [
        Transaction({"R": [(0, f"v{index}")]}, tx_id=f"T{index}")
        for index in range(k)
    ]
    return BlockchainDatabase(state, constraints, pending)


_cache: dict[str, DCSatChecker] = {}


def engine_checker(engine: str) -> DCSatChecker:
    """A cached sqlite-backed checker per engine; ``batched`` runs with
    ``batch_size=K`` so the whole component fits one round trip."""
    if engine not in _cache:
        checker = DCSatChecker(k_clique_db(), backend="sqlite")
        if engine == "batched":
            checker.engine = BatchedEngine(checker.backend, batch_size=CLIQUE_K)
        else:
            checker.engine = make_engine(engine, checker.backend)
        _cache[engine] = checker
    return _cache[engine]


@pytest.fixture(scope="module", autouse=True)
def close_checkers():
    yield
    for checker in _cache.values():
        checker.close()
    _cache.clear()


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_sweep(benchmark, engine):
    checker = engine_checker(engine)
    result = benchmark(checker.check, Q_SATISFIED, algorithm="naive")
    assert result.satisfied
    assert result.stats.worlds_checked == CLIQUE_K
    assert result.stats.engine == engine


def test_batched_is_one_round_trip_sync_is_k():
    sync = engine_checker("sync")
    batched = engine_checker("batched")

    before = sync.backend.eval_roundtrips
    sync_result = sync.check(Q_SATISFIED, algorithm="naive", short_circuit=False)
    sync_trips = sync.backend.eval_roundtrips - before

    before = batched.backend.eval_roundtrips
    batched_result = batched.check(
        Q_SATISFIED, algorithm="naive", short_circuit=False
    )
    batched_trips = batched.backend.eval_roundtrips - before

    # Without the short-circuit probe, the sweep *is* the query load:
    # one state-check round trip plus K per-world trips under sync,
    # one state-check plus ONE multi-world trip under batched.
    assert sync_trips == 1 + CLIQUE_K
    assert batched_trips == 1 + 1

    assert batched_result.satisfied == sync_result.satisfied
    assert batched_result.stats.worlds_checked == sync_result.stats.worlds_checked
    assert batched_result.stats.evaluations == sync_result.stats.evaluations


def timed_median(checker: DCSatChecker, rounds: int = ROUNDS) -> float:
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        result = checker.check(Q_SATISFIED, algorithm="naive")
        samples.append(time.perf_counter() - started)
        assert result.satisfied
    samples.sort()
    return samples[len(samples) // 2]


def test_batched_beats_sync_wall_clock():
    sync_median = timed_median(engine_checker("sync"))
    batched_median = timed_median(engine_checker("batched"))
    assert batched_median < sync_median, (
        f"batched took {batched_median * 1000:.2f}ms vs "
        f"{sync_median * 1000:.2f}ms sync over a {CLIQUE_K}-clique component"
    )


def test_all_engines_verdict_and_stats_identical():
    views = {}
    for engine in ENGINES:
        checker = engine_checker(engine)
        for query in (Q_SATISFIED, Q_VIOLATED):
            result = checker.check(query, algorithm="naive")
            views.setdefault(query, {})[engine] = (
                result.satisfied,
                result.witness,
                result.stats.worlds_checked,
                result.stats.evaluations,
                result.stats.cliques_enumerated,
            )
    for query, by_engine in views.items():
        assert by_engine["batched"] == by_engine["sync"], query
        assert by_engine["async"] == by_engine["sync"], query


# ----------------------------------------------------------------------
# Planner comparison: the clique-sweep hot path, enumeration only.
#
# A steady-state monitor re-sweeps its components check after check, so
# the planner cost is the *repeated* maximal-clique enumeration over an
# unchanged graph.  The set planner rebuilds its clique subgraph
# (O(K²) pair scans) and runs Bron–Kerbosch over Python string sets on
# every sweep; the bitset planner sweeps cached machine-word masks.


def planner_graph(planner: str):
    return make_fd_graph(planner, Workspace(k_clique_db(PLANNER_K)))


def sweep_median(
    graph, rounds: int = max(ROUNDS, 3)
) -> tuple[float, int, list[float]]:
    count = sum(1 for _ in graph.maximal_cliques())  # warm any caches
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        swept = sum(1 for _ in graph.maximal_cliques())
        samples.append(time.perf_counter() - started)
        assert swept == count
    samples.sort()
    return samples[len(samples) // 2], count, samples


def test_planner_sweeps_are_identical():
    set_graph = planner_graph("set")
    bitset_graph = planner_graph("bitset")
    assert list(bitset_graph.maximal_cliques()) == list(
        set_graph.maximal_cliques()
    )


def test_bitset_planner_speedup_on_clique_sweep():
    set_median, count, _ = sweep_median(planner_graph("set"))
    bitset_median, bitset_count, _ = sweep_median(planner_graph("bitset"))
    assert count == bitset_count == PLANNER_K
    speedup = set_median / bitset_median
    assert speedup >= PLANNER_MIN_SPEEDUP, (
        f"bitset sweep {bitset_median * 1000:.2f}ms vs set "
        f"{set_median * 1000:.2f}ms over a {PLANNER_K}-clique component: "
        f"{speedup:.1f}x < required {PLANNER_MIN_SPEEDUP}x"
    )


@pytest.fixture(scope="module", autouse=True)
def bench_json_artifact():
    """When a ``BENCH_<rev>.json`` artifact is being written this
    session (see :mod:`benchmarks.conftest`), land one row per engine —
    median sweep wall clock plus round-trip count — in it."""
    yield
    from benchmarks.conftest import _bench_json_path, record_bench

    if _bench_json_path() is None:
        return
    for engine in ENGINES:
        checker = engine_checker(engine)
        before = checker.backend.eval_roundtrips
        samples = []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            result = checker.check(Q_SATISFIED, algorithm="naive")
            samples.append(time.perf_counter() - started)
            assert result.satisfied
        record_bench(
            "engines.k_clique_sweep",
            engine=engine,
            backend="sqlite",
            algorithm="naive",
            planner=checker.planner,
            clique_k=CLIQUE_K,
            rounds=ROUNDS,
            seconds=sorted(samples)[len(samples) // 2],
            samples=samples,
            eval_roundtrips=checker.backend.eval_roundtrips - before,
            gate=True,
        )
    for planner in ("set", "bitset"):
        median, count, samples = sweep_median(planner_graph(planner))
        record_bench(
            "planner.clique_sweep",
            planner=planner,
            clique_k=PLANNER_K,
            cliques=count,
            rounds=max(ROUNDS, 3),
            seconds=median,
            samples=samples,
            gate=True,
        )
