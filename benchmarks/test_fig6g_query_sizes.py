"""Figure 6g: varying the path-query length (2–5), unsatisfied.

Paper shape: runtime grows only slightly with the query — query
evaluation is a small fraction of the total; world construction
dominates.
"""

import pytest

from benchmarks.conftest import cached_checker, cached_picker
from repro.workloads.queries import path_constraint

LENGTHS = [2, 3, 4, 5]
CASES = [
    (length, algorithm)
    for length in LENGTHS
    for algorithm in ("naive", "opt")
]


@pytest.mark.parametrize("length,algorithm", CASES, ids=lambda c: str(c))
def test_fig6g_query_sizes(benchmark, length, algorithm):
    checker = cached_checker("D200-S")
    picker = cached_picker("D200-S")
    source, sink = picker.path_endpoints(length)
    query = path_constraint(length, source, sink)

    result = benchmark(checker.check, query, algorithm=algorithm)
    assert not result.satisfied
