"""Figure 6h: varying the dataset size (D100/D200/D300 analogues),
unsatisfied q_p3.

Paper shape: runtime grows moderately with the data; OptDCSat remains
significantly faster than NaiveDCSat throughout.
"""

import pytest

from benchmarks.conftest import cached_checker, cached_picker
from repro.workloads.queries import path_constraint

CASES = [
    (name, algorithm)
    for name in ("D100-S", "D200-S", "D300-S")
    for algorithm in ("naive", "opt")
]


@pytest.mark.parametrize("name,algorithm", CASES, ids=lambda c: str(c))
def test_fig6h_data_sizes(benchmark, name, algorithm):
    checker = cached_checker(name)
    picker = cached_picker(name)
    source, sink = picker.path_endpoints(3)
    query = path_constraint(3, source, sink)

    result = benchmark(checker.check, query, algorithm=algorithm)
    assert not result.satisfied
