"""Figure 6c: varying the number of pending transactions, satisfied q_p3.

Paper shape: runtime stays sub-second as pending blocks grow from 10 to
50 — the short-circuit evaluation only grows with |R ∪ T|.
"""

import pytest

from benchmarks.conftest import cached_checker
from benchmarks.queryset import satisfied_queries
from repro.bitcoin.generator import PRESETS

PENDING_BLOCKS = [10, 20, 30, 40, 50]


def _spec(pending_blocks: int):
    return PRESETS["D200-S"].scaled(
        name=f"D200-S/p{pending_blocks}", pending_blocks=pending_blocks
    )


@pytest.mark.parametrize("pending_blocks", PENDING_BLOCKS)
def test_fig6c_pending_satisfied(benchmark, pending_blocks):
    checker = cached_checker(_spec(pending_blocks))
    query = satisfied_queries()["qp3"]

    result = benchmark(checker.check, query, algorithm="opt")
    assert result.satisfied
    assert result.stats.short_circuit_used
