"""Figure 6e: varying the number of fd-contradictions, satisfied q_p3.

Paper shape: flat, sub-second (the short-circuit does not look at the
conflict structure at all).
"""

import pytest

from benchmarks.conftest import cached_checker
from benchmarks.queryset import satisfied_queries
from repro.bitcoin.generator import PRESETS

CONTRADICTIONS = [10, 20, 30, 40, 50]


def _spec(contradictions: int):
    return PRESETS["D200-S"].scaled(
        name=f"D200-S/c{contradictions}", contradictions=contradictions
    )


@pytest.mark.parametrize("contradictions", CONTRADICTIONS)
def test_fig6e_contradictions_satisfied(benchmark, contradictions):
    checker = cached_checker(_spec(contradictions))
    query = satisfied_queries()["qp3"]

    result = benchmark(checker.check, query, algorithm="opt")
    assert result.satisfied
