"""``python -m benchmarks.trend`` — bench trend reports from a checkout.

A thin wrapper over :mod:`repro.obs.bench` for environments where the
package is not installed (CI runs the suite straight from the repo):

::

    python -m benchmarks.trend report BENCH_abc1234.json
    python -m benchmarks.trend diff benchmarks/BASELINE.json \
        BENCH_abc1234.json --gate

Installed checkouts can use ``repro bench report`` / ``repro bench
diff`` — same flags, same exit codes (0 parity, 1 gated regression,
2 usage / malformed artifact).
"""

from __future__ import annotations

import pathlib
import sys

_SRC = pathlib.Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.bench import main

if __name__ == "__main__":
    raise SystemExit(main())
