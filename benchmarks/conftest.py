"""Shared benchmark fixtures: cached datasets, checkers, constants.

Every benchmark regenerates one artefact of the paper's Section 7.  The
datasets are scaled-down analogues (see DESIGN.md §4); dataset
generation is cached per session so the benchmarks measure DCSat, not
the generator.
"""

from __future__ import annotations

import pathlib
import sys

_SRC = pathlib.Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.bitcoin.generator import PRESETS, Dataset, DatasetSpec, generate_dataset
from repro.core.checker import DCSatChecker
from repro.workloads.constants import ConstantPicker

_dataset_cache: dict[tuple, Dataset] = {}


def cached_dataset(spec: DatasetSpec | str) -> Dataset:
    """Generate (once) and cache a dataset."""
    key = spec if isinstance(spec, str) else (
        spec.name, spec.committed_blocks, spec.pending_blocks,
        spec.txs_per_block, spec.users, spec.contradictions, spec.seed,
    )
    if key not in _dataset_cache:
        _dataset_cache[key] = generate_dataset(spec)
    return _dataset_cache[key]


_checker_cache: dict[tuple, DCSatChecker] = {}


def cached_checker(spec: DatasetSpec | str, backend: str = "memory") -> DCSatChecker:
    """Build (once) and cache a checker over a dataset's relational image."""
    dataset = cached_dataset(spec)
    key = (id(dataset), backend)
    if key not in _checker_cache:
        _checker_cache[key] = DCSatChecker(
            dataset.to_blockchain_database(),
            backend=backend,
            assume_nonnegative_sums=True,
        )
    return _checker_cache[key]


_picker_cache: dict[int, ConstantPicker] = {}


def cached_picker(spec: DatasetSpec | str) -> ConstantPicker:
    dataset = cached_dataset(spec)
    if id(dataset) not in _picker_cache:
        _picker_cache[id(dataset)] = ConstantPicker(dataset)
    return _picker_cache[id(dataset)]


@pytest.fixture(scope="session")
def default_checker() -> DCSatChecker:
    """The paper's default configuration: D200-scale, 20 contradictions."""
    return cached_checker("D200-S")


@pytest.fixture(scope="session")
def default_picker() -> ConstantPicker:
    return cached_picker("D200-S")
