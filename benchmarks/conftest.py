"""Shared benchmark fixtures: cached datasets, checkers, constants.

Every benchmark regenerates one artefact of the paper's Section 7.  The
datasets are scaled-down analogues (see DESIGN.md §4); dataset
generation is cached per session so the benchmarks measure DCSat, not
the generator.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import sys
import threading
import time

_SRC = pathlib.Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.bitcoin.generator import PRESETS, Dataset, DatasetSpec, generate_dataset
from repro.core.checker import DCSatChecker
from repro.obs.bench import sample_quantiles
from repro.workloads.constants import ConstantPicker

_dataset_cache: dict[tuple, Dataset] = {}


def cached_dataset(spec: DatasetSpec | str) -> Dataset:
    """Generate (once) and cache a dataset."""
    key = spec if isinstance(spec, str) else (
        spec.name, spec.committed_blocks, spec.pending_blocks,
        spec.txs_per_block, spec.users, spec.contradictions, spec.seed,
    )
    if key not in _dataset_cache:
        _dataset_cache[key] = generate_dataset(spec)
    return _dataset_cache[key]


_checker_cache: dict[tuple, DCSatChecker] = {}


def cached_checker(spec: DatasetSpec | str, backend: str = "memory") -> DCSatChecker:
    """Build (once) and cache a checker over a dataset's relational image."""
    dataset = cached_dataset(spec)
    key = (id(dataset), backend)
    if key not in _checker_cache:
        _checker_cache[key] = DCSatChecker(
            dataset.to_blockchain_database(),
            backend=backend,
            assume_nonnegative_sums=True,
        )
    return _checker_cache[key]


_picker_cache: dict[int, ConstantPicker] = {}


def cached_picker(spec: DatasetSpec | str) -> ConstantPicker:
    dataset = cached_dataset(spec)
    if id(dataset) not in _picker_cache:
        _picker_cache[id(dataset)] = ConstantPicker(dataset)
    return _picker_cache[id(dataset)]


# ----------------------------------------------------------------------
# The canonical benchmark artifact: every benchmark that calls
# :func:`record_bench` lands one row (name + dimensions + timings) in a
# single ``BENCH_<rev>.json``, written at session end.  CI uploads it;
# locally set ``REPRO_BENCH_JSON=/path/out.json`` (or just
# ``REPRO_BENCH_WRITE=1`` for the default name) to get one.

#: Artifact schema: bumped whenever the writer changes shape.  v2 added
#: the schema field itself, cpu_count, and derived p50/p95 on rows that
#: keep raw ``samples``.
SCHEMA_VERSION = 2

_bench_records: list[dict] = []
_bench_lock = threading.Lock()


def _git_rev(cwd: str | None = None) -> str:
    if cwd is None:
        cwd = str(pathlib.Path(__file__).parent.parent)
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10.0, cwd=cwd,
        ).stdout.strip() or "dev"
    except OSError:
        return "dev"


def record_bench(name: str, **fields) -> None:
    """Add one row to the session's ``BENCH_<rev>.json`` artifact.

    *name* identifies the benchmark; *fields* carry its dimensions
    (``algorithm=``, ``engine=``, ``backend=``, ``planner=``,
    ``shards=`` ...) and measurements (``seconds=`` medians, counters).
    ``samples=[...]`` keeps the raw per-round timings — the writer
    derives p50/p95 from them.  ``gate=True`` marks a hot-path row the
    CI regression gate enforces (``repro bench diff --gate``).

    Thread-safe: parallel benchmark helpers may record concurrently.
    """
    with _bench_lock:
        _bench_records.append({"name": name, **fields})


def _bench_json_path(environ: dict | None = None) -> str | None:
    environ = environ if environ is not None else os.environ
    explicit = environ.get("REPRO_BENCH_JSON")
    if explicit:
        return explicit
    if environ.get("REPRO_BENCH_WRITE"):
        return f"BENCH_{_git_rev()}.json"
    return None


def build_artifact(records: list[dict], rev: str | None = None) -> dict:
    """The artifact dict the session writer dumps (testable directly)."""
    rows = []
    for record in sorted(records, key=lambda row: row["name"]):
        row = dict(record)
        samples = row.get("samples")
        if samples:
            row.update(sample_quantiles(list(samples)))
        rows.append(row)
    return {
        "schema": SCHEMA_VERSION,
        "rev": rev if rev is not None else _git_rev(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "benchmarks": rows,
    }


def write_artifact(path: str, records: list[dict], rev: str | None = None) -> dict:
    """Serialize *records* as one artifact at *path*; returns the dict."""
    artifact = build_artifact(records, rev=rev)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, default=str)
        handle.write("\n")
    return artifact


def pytest_sessionfinish(session, exitstatus):
    path = _bench_json_path()
    if path is None or not _bench_records:
        return
    write_artifact(path, _bench_records)
    print(f"\nwrote {len(_bench_records)} benchmark rows to {path}")


@pytest.fixture(scope="session")
def default_checker() -> DCSatChecker:
    """The paper's default configuration: D200-scale, 20 contradictions."""
    return cached_checker("D200-S")


@pytest.fixture(scope="session")
def default_picker() -> ConstantPicker:
    return cached_picker("D200-S")
